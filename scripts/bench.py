#!/usr/bin/env python
"""Wall-clock performance harness for the simulated memory system.

Measures the *host-time* cost of the simulation itself — not the virtual
time the cost model charges (those numbers are what the experiments report
and are unchanged by any of this). Four benches:

* ``raw_access``     — checked load/store on a hot page, software TLB on
                       vs. off (the tentpole speedup; the off run is the
                       seed behaviour);
* ``domain_switch``  — enter/exit a persistent domain with a trivial body;
* ``fault_rewind``   — inject a stack smash and rewind, lazy vs. eager
                       scrub (the E2b ablation axis, now also a wall-clock
                       axis);
* ``kvstore_e2e``    — the Memcached retrofit end-to-end: per-connection
                       isolation, set/get mix through the unsafe parser,
                       TLB on vs. off;
* ``memcached_e2e``  — the PR 2 pipeline: the same mix per-connection,
                       per-request, batched (16-request pipelines through
                       ``handle_batch``), and with the domain re-entry
                       fast path disabled (the PR 1 baseline behaviour);
* ``domain_reentry`` — enter/exit a persistent domain with the entry-
                       ticket cache on vs. off, isolating the re-entry
                       fast path from protocol work;
* ``memcached_obs``  — the PR 6 cheap-by-default contract: the memcached
                       set/get mix pipelined through ``handle_batch`` (the
                       PR 6 serving configuration) with observability
                       disabled (the default) vs. a live ``Observability``
                       hub at sampling 1.0 and 0.01, measured in the
                       *saturated steady state* (the span buffer is warmed
                       to capacity first, so the numbers reflect the
                       ring-buffer hot path a long-running deployment sits
                       in, not the transient fill phase); the per-request
                       grain is reported as ``*_per_request``,
                       informational;
* ``access_plans``   — the PR 6 tentpole: the same logical access stream
                       through a compiled plan's fused/vectorised
                       accessors vs. the per-access checked path with
                       plans disabled (``AddressSpace(access_plans=
                       False)``, the ablation baseline);
* ``fleet``          — the PR 7 tentpole: scatter-gather multiget
                       throughput over the consistent-hash fleet's
                       critical path, 8 shards vs. 1, serving identical
                       deterministic key sequences; plus a seeded
                       end-to-end fleet run (arrivals, failover,
                       latency percentiles, sustainability ledger);
* ``backends``       — the PR 8 tentpole: the memcached E1 serving mix
                       (per-connection isolation, set/get through the
                       unsafe parser) on each isolation substrate —
                       MPK (explicit and default spelling), simulated
                       CHERI, and SFI — with the mpk-vs-default parity
                       ratio gated (the backend axis must not tax the
                       default path);
* ``campaign``       — the PR 10 subsystem: the stratified sampling
                       loop's injection throughput (fresh runtime per
                       round, severity draws, ledger fold) plus the
                       wall-clock of one tiny seeded closed loop
                       (sample -> fit -> decide -> validate) —
                       informational, not gated.

Writes machine-readable results (ops/sec plus on/off speedups) to a JSON
file — ``BENCH_PR10.json`` by default — which ``check_bench_regression.py``
compares across PRs and gates with the absolute targets (plan speedup
>= 10x, batched-vs-baseline >= 3x, obs overhead <= 1.05x, 8-shard
multiget >= 3x 1-shard, mpk backend >= 0.75x the default spelling).

Usage::

    PYTHONPATH=src python scripts/bench.py [--out BENCH_PR10.json] [--quick]
        [--only memcached_obs,...] [--repeat 3]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime


#: Best-of-N repeats per measurement, settable via ``--repeat``. Wall-clock
#: rates on a shared VM swing by 20%+ between runs; taking the best of a few
#: independent timed windows (the ``timeit.repeat`` recipe) recovers a stable
#: estimate of what the code can do when the machine is not being preempted.
_REPEAT = 1


def _measure_group(
    fns: dict, *, min_time: float = 0.25, batch: int = 1, rounds: int = 0,
    grain: float = 0.01,
) -> dict:
    """Interleaved measurement of several configurations of one workload.

    ``fns`` maps config name -> ``fn(n)`` performing ``n`` operations.
    Sequentially measuring configs lets machine drift (CPU frequency
    excursions, noisy neighbours on a shared VM) land entirely on whichever
    config happened to run during the slow spell — observed swings exceed
    20%, which is fatal for within-file ratios gated at 5-25%. Instead,
    each round interleaves single ~``grain``-second calls round-robin
    until every config has accumulated ``min_time``, so drift is shared
    across the whole group at the call scale; the reported number per
    config is its best round. Per-call rates are kept (``_call_rates``,
    stripped from the JSON) so :func:`_paired_ratio` can pair calls that
    ran within milliseconds of each other. ``rounds`` overrides
    ``_REPEAT`` when a bench gates a ratio tight enough (e.g. obs <=
    1.05x) to need more samples than the default to converge.
    """
    # Warm up and calibrate each config's batch size so one call ~= grain.
    sizes = {}
    for name, fn in fns.items():
        n = batch
        while True:
            start = time.perf_counter()
            fn(n)
            elapsed = time.perf_counter() - start
            if elapsed >= grain:
                break
            n *= 4
        sizes[name] = n
    results: dict = {name: None for name in fns}
    # Timed windows run with the cyclic GC off (the pyperf discipline):
    # collector pauses scale with *everything alive in the process* — other
    # configs' runtimes, earlier benches' arenas — so leaving GC on charges
    # each config for heap it does not own, in proportion to how much it
    # allocates. Refcounting still reclaims the hot loops' garbage.
    gc_was_enabled = gc.isenabled()
    for _ in range(max(1, rounds or _REPEAT)):
        gc.collect()
        gc.disable()
        try:
            totals = {name: [0, 0.0, 0.0] for name in fns}  # ops, time, best
            calls = {name: [] for name in fns}
            # Alternate single ~grain-sized calls round-robin until every
            # config has accumulated ``min_time``: drift is then shared at
            # the call scale, not the window scale — adjacent same-round
            # windows were observed to disagree by 10%+ under load.
            while True:
                pending = False
                for name, fn in fns.items():
                    acc = totals[name]
                    if acc[1] >= min_time:
                        continue
                    pending = True
                    n = sizes[name]
                    start = time.perf_counter()
                    fn(n)
                    elapsed = time.perf_counter() - start
                    acc[0] += n
                    acc[1] += elapsed
                    acc[2] = max(acc[2], n / elapsed)
                    calls[name].append(n / elapsed)
                if not pending:
                    break
            for name, (total_ops, total_time, best) in totals.items():
                window = {
                    "ops_per_sec": round(total_ops / total_time, 1),
                    "best_ops_per_sec": round(best, 1),
                    "ops": total_ops,
                    "seconds": round(total_time, 4),
                }
                prev = results[name]
                if prev is None or window["ops_per_sec"] > prev["ops_per_sec"]:
                    window["round_rates"] = prev["round_rates"] if prev else []
                    window["_call_rates"] = prev["_call_rates"] if prev else []
                    results[name] = window
                results[name]["round_rates"].append(
                    round(total_ops / total_time, 1)
                )
                results[name]["_call_rates"].extend(calls[name])
        finally:
            if gc_was_enabled:
                gc.enable()
    return results


def _paired_ratio(numer: dict, denom: dict) -> float:
    """Ratio of two configs measured by the same ``_measure_group`` call.

    The median over all *call pairs*: the i-th timed call of one config is
    paired with the i-th call of the other, which ran within milliseconds
    of it in the same round-robin sweep. Machine noise on a shared VM is
    violent (adjacent 0.25 s windows disagreeing by 25%) but mostly
    *shared* at the few-millisecond scale, so each pair largely cancels
    the drift both calls sat in; the median over the hundreds of pairs a
    run accumulates then discards the pairs where a steal slice or
    preemption landed inside only one call. Medians of per-round
    aggregates were tried first and wobble by several percent under the
    same noise — far too coarse for a gate with 5% total headroom.

    This is the estimator the tight regression gates (obs <= 1.05x) are
    checked against.
    """
    pairs = list(zip(numer["_call_rates"], denom["_call_rates"]))
    ratios = sorted(a / b for a, b in pairs)
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2.0


def _measure(fn, *, min_time: float = 0.25, batch: int = 1) -> dict:
    """Run ``fn(n)`` (which performs ``n`` operations) until ``min_time``
    seconds of wall-clock have accumulated; return ops/sec statistics for
    the best of ``_REPEAT`` such windows."""
    return _measure_group({"_": fn}, min_time=min_time, batch=batch)["_"]


# ----------------------------------------------------------------------
# Bench 1: raw checked access
# ----------------------------------------------------------------------

def bench_raw_access(min_time: float) -> dict:
    def run(tlb: bool) -> dict:
        space = AddressSpace(size=PAGE_SIZE * 16, tlb_enabled=tlb)
        space.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
        space.store(64, b"x" * 32)

        def loop(n: int) -> None:
            load = space.load
            store = space.store
            payload = b"y" * 32
            for _ in range(n // 2):
                load(64, 32)
                store(64, payload)

        return _measure(loop, min_time=min_time, batch=2048)

    on = run(True)
    off = run(False)
    return {
        "tlb_on": on,
        "tlb_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 1b: compiled access plans vs. the per-access checked path
# ----------------------------------------------------------------------

def bench_access_plans(min_time: float) -> dict:
    """The PR 6 tentpole gate: one iteration performs the same logical
    access stream either way — a 256-word header scan, 32 adjacent item
    reads and one item write, the shape of the kvstore/slab hot loops.
    Plan-on rides the fused/vectorised accessors (three Python calls);
    plan-off pays the per-access checked path for every single access,
    which is exactly what ``AddressSpace(access_plans=False)`` (and the
    seed) executes."""
    ITEM_COUNT = 32
    ITEM_SIZE = 64
    HEADER_WORDS = 256
    OPS = HEADER_WORDS + ITEM_COUNT + 1  # logical accesses per iteration
    items_base = 4 * HEADER_WORDS
    requests = [
        (items_base + i * ITEM_SIZE, ITEM_SIZE) for i in range(ITEM_COUNT)
    ]
    payload = b"p" * ITEM_SIZE

    def _space(plans: bool) -> AddressSpace:
        space = AddressSpace(size=PAGE_SIZE * 16, access_plans=plans)
        space.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
        space.store(0, b"\x00" * (items_base + ITEM_COUNT * ITEM_SIZE))
        return space

    def run_on() -> dict:
        space = _space(True)
        plan = space.plans.checked_plan(0, 2 * PAGE_SIZE, "rw")
        assert plan is not None

        def loop(n: int) -> None:
            load_u32_run = plan.load_u32_run
            load_many = plan.load_many
            store = plan.store
            for _ in range(n // OPS):
                load_u32_run(0, HEADER_WORDS)
                load_many(requests)
                store(items_base, payload)

        return _measure(loop, min_time=min_time, batch=OPS * 4)

    def run_off() -> dict:
        space = _space(False)

        def loop(n: int) -> None:
            load_u32 = space.load_u32
            load = space.load
            store = space.store
            for _ in range(n // OPS):
                for i in range(HEADER_WORDS):
                    load_u32(4 * i)
                for address, length in requests:
                    load(address, length)
                store(items_base, payload)

        return _measure(loop, min_time=min_time, batch=OPS * 4)

    on = run_on()
    off = run_off()
    return {
        "plan_on": on,
        "plan_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 2: domain switch
# ----------------------------------------------------------------------

def bench_domain_switch(min_time: float) -> dict:
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

    def body(handle):
        return None

    def loop(n: int) -> None:
        execute = runtime.execute
        udi = domain.udi
        for _ in range(n):
            execute(udi, body)

    return _measure(loop, min_time=min_time, batch=64)


# ----------------------------------------------------------------------
# Bench 3: fault -> rewind cycle
# ----------------------------------------------------------------------

def bench_fault_rewind(min_time: float) -> dict:
    def smash(handle):
        frame = handle.push_frame("victim")
        buf = frame.alloca(32)
        frame.write_buffer(buf, b"A" * 128)  # canary smash

    def run(mode: str) -> dict:
        runtime = SdradRuntime(scrub_mode=mode)
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )

        def loop(n: int) -> None:
            execute = runtime.execute
            udi = domain.udi
            for _ in range(n):
                result = execute(udi, smash)
                assert not result.ok

        return _measure(loop, min_time=min_time, batch=32)

    lazy = run("lazy")
    eager = run("eager")
    return {
        "lazy": lazy,
        "eager": eager,
        "speedup": round(lazy["ops_per_sec"] / eager["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 4: kvstore end-to-end
# ----------------------------------------------------------------------

def bench_kvstore_e2e(min_time: float) -> dict:
    def run(tlb: bool) -> dict:
        runtime = SdradRuntime(space=AddressSpace(tlb_enabled=tlb))
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("bench-client")
        requests = []
        for i in range(16):
            value = b"v" * 64
            requests.append(
                b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value)
            )
            requests.append(b"get key%d\r\n" % i)

        def loop(n: int) -> None:
            handle = server.handle
            reqs = requests
            for i in range(n):
                handle("bench-client", reqs[i % len(reqs)])

        return _measure(loop, min_time=min_time, batch=32)

    on = run(True)
    off = run(False)
    return {
        "tlb_on": on,
        "tlb_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 5: memcached end-to-end, batching + re-entry fast path (PR 2)
# ----------------------------------------------------------------------

def bench_memcached_e2e(min_time: float) -> dict:
    """The request-pipeline benches: per-connection vs. per-request vs.
    batched, per-connection with the re-entry cache off (the PR 1
    execution path), and ``baseline`` — the fully-unoptimised seed
    execution path (software TLB off, re-entry cache off, access plans
    off, unbatched), the within-file reference the PR 6 >=3x batched
    speedup gate measures against."""

    def requests() -> list[bytes]:
        reqs = []
        for i in range(16):
            value = b"v" * 64
            reqs.append(b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value))
            reqs.append(b"get key%d\r\n" % i)
        return reqs

    def make_loop(isolation: IsolationMode, *, batched: bool = False,
                  reentry: bool = True, plans: bool = True,
                  tlb: bool = True):
        runtime = SdradRuntime(
            reentry_cache=reentry,
            space=AddressSpace(tlb_enabled=tlb, access_plans=plans),
        )
        server = MemcachedServer(runtime, isolation=isolation)
        server.connect("bench-client")
        reqs = requests()

        if batched:
            batch_size = 16
            batches = [
                reqs[i : i + batch_size]
                for i in range(0, len(reqs), batch_size)
            ]

            def loop(n: int) -> None:
                handle_batch = server.handle_batch
                for i in range(n // batch_size):
                    handle_batch("bench-client", batches[i % len(batches)])

            return loop

        def loop(n: int) -> None:
            handle = server.handle
            for i in range(n):
                handle("bench-client", reqs[i % len(reqs)])

        return loop

    # All five configurations are measured interleaved: the gated ratios
    # (batched vs. baseline/fastpath_off) must not be at the mercy of
    # machine drift between two sequentially-timed configs.
    measured = _measure_group(
        {
            "per_connection": make_loop(IsolationMode.PER_CONNECTION),
            "per_request": make_loop(IsolationMode.PER_REQUEST),
            "batched": make_loop(IsolationMode.PER_CONNECTION, batched=True),
            "fastpath_off": make_loop(
                IsolationMode.PER_CONNECTION, reentry=False
            ),
            "baseline": make_loop(
                IsolationMode.PER_CONNECTION,
                reentry=False, plans=False, tlb=False,
            ),
        },
        min_time=min_time,
        batch=32,
        rounds=max(_REPEAT, 4),
    )
    batched = measured["batched"]
    return {
        **measured,
        "batched_speedup": round(
            _paired_ratio(batched, measured["per_connection"]), 2
        ),
        "speedup_vs_fastpath_off": round(
            _paired_ratio(batched, measured["fastpath_off"]), 2
        ),
        "speedup_vs_baseline": round(
            _paired_ratio(batched, measured["baseline"]), 2
        ),
    }


# ----------------------------------------------------------------------
# Bench 6: domain re-entry fast path in isolation
# ----------------------------------------------------------------------

def bench_domain_reentry(min_time: float) -> dict:
    """Same loop as ``domain_switch``, but explicitly contrasting the
    entry-ticket cache on (PR 2) vs. off (the PR 1 enter/exit path)."""

    def run(reentry: bool) -> dict:
        runtime = SdradRuntime(reentry_cache=reentry)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def body(handle):
            return None

        def loop(n: int) -> None:
            execute = runtime.execute
            udi = domain.udi
            for _ in range(n):
                execute(udi, body)

        return _measure(loop, min_time=min_time, batch=64)

    on = run(True)
    off = run(False)
    return {
        "reentry_on": on,
        "reentry_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 7: observability overhead (PR 5)
# ----------------------------------------------------------------------

def bench_memcached_obs(min_time: float) -> dict:
    """Observability's cost contract (the PR 6 <=1.05x gate).

    ``obs=None`` (the default) must cost nothing — the server binds its
    dispatch methods straight to the implementations, so there is not even
    a wrapper frame. A live hub is measured in the *saturated steady
    state*: the span buffer (capacity 10,000, a production-shaped cap) is
    warmed to capacity before timing starts, so the measured path is the
    ring-buffer hot path — interned codes, the shared DROPPED placeholder,
    cached metric handles — that a long-running deployment actually sits
    in. The fill-phase cost is a bounded one-off (capacity x span build),
    not a per-request cost, which is why steady state is the honest
    denominator for the paper's always-on-telemetry claim.

    The gated ratio rides the PR 6 serving configuration — 16-request
    pipelines through ``handle_batch`` — where the tracing grain is one
    span per batch entry plus exact per-request metrics (uniform-status
    batches record in one vectorised call). The per-request grain (two
    spans + two metric points per single ``handle``) is also reported, as
    ``*_per_request`` entries: that grain buys per-request trace detail at
    a cost no in-process tracer can amortise away, so it is informational
    rather than gated. All configurations are measured interleaved so the
    within-file ratios survive machine drift.

    Every configuration runs on ONE shared server instance, switching
    ``runtime.obs`` between ``None`` and the pre-saturated hubs around
    each timed call. Separately constructed servers differ by heap-layout
    luck — measured at 2-4% on this workload, the same order as the gated
    margin — so a two-instance comparison measures the allocator lottery
    as much as the instrumentation; pairing every config over the identical
    instance cancels that bias and leaves only the obs cost. The obs-off
    config therefore pays the wrapper's one-attribute ``obs is None``
    early-out rather than a wrapper-free binding — the same check a
    production ``obs=None`` deployment pays per dispatch, ~0.03% of a
    batch, charged to the *off* side so the gate stays conservative."""
    from repro.obs import Observability

    def requests() -> list[bytes]:
        reqs = []
        for i in range(16):
            value = b"v" * 64
            reqs.append(b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value))
            reqs.append(b"get key%d\r\n" % i)
        return reqs

    reqs = requests()
    batch_size = 16
    batches = [reqs[0:batch_size], reqs[batch_size : 2 * batch_size]]

    full = Observability(span_capacity=10_000)
    sampled = Observability(sampling=0.01, span_capacity=10_000)
    runtime = SdradRuntime(obs=full)
    sampled.bind_clock(runtime.clock)
    server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
    server.connect("bench-client")
    # ``runtime._obs_entries`` is resolved against the constructed-with hub;
    # each toggle swaps the matching counter in with the hub.
    entry_counters = {
        id(None): None,
        id(full): runtime._obs_entries,
        id(sampled): sampled.registry.counter("sdrad_domain_entries_total"),
    }

    for hub_obj in (full, sampled):
        runtime.obs = hub_obj
        runtime._obs_entries = entry_counters[id(hub_obj)]
        # Warm the real serving loop (metric handles, interned codes) ...
        for _ in range(64):
            for raws in batches:
                server.handle_batch("bench-client", raws)
        # ... then saturate the ring directly: the timed window must sit in
        # the buffer-full steady state, and at 1% sampling the serving loop
        # would need capacity/sampling ~= 1M batches to get there.
        while not hub_obj.buffer.full:
            span = hub_obj.start_span("memcached.batch", client="bench-client")
            hub_obj.end_span(span, status="ok")
    runtime.obs = None
    runtime._obs_entries = None

    def make_loop(hub_obj, *, batched: bool):
        counter = entry_counters[id(hub_obj)]

        if batched:
            def loop(n: int) -> None:
                runtime.obs = hub_obj
                runtime._obs_entries = counter
                try:
                    handle_batch = server.handle_batch
                    for i in range(n // batch_size):
                        handle_batch("bench-client", batches[i % len(batches)])
                finally:
                    runtime.obs = None
                    runtime._obs_entries = None

            return loop

        def loop(n: int) -> None:
            runtime.obs = hub_obj
            runtime._obs_entries = counter
            try:
                handle = server.handle
                for i in range(n):
                    handle("bench-client", reqs[i % len(reqs)])
            finally:
                runtime.obs = None
                runtime._obs_entries = None

        return loop

    measured = _measure_group(
        {
            "obs_off": make_loop(None, batched=True),
            "obs_on": make_loop(full, batched=True),
            "obs_sampled_1pct": make_loop(sampled, batched=True),
            "obs_off_per_request": make_loop(None, batched=False),
            "obs_on_per_request": make_loop(full, batched=False),
        },
        min_time=min_time,
        batch=32,
        # The 1.05x gate leaves a few percent of noise headroom over the
        # true ratio: pair at ~5 ms grain and accumulate more rounds than
        # the default so the call-pair median converges.
        rounds=max(_REPEAT, 14),
        grain=0.005,
    )
    off = measured["obs_off"]
    return {
        **measured,
        "overhead_full": round(
            _paired_ratio(off, measured["obs_on"]), 3
        ),
        "overhead_sampled": round(
            _paired_ratio(off, measured["obs_sampled_1pct"]), 3
        ),
        "overhead_full_per_request": round(
            _paired_ratio(
                measured["obs_off_per_request"],
                measured["obs_on_per_request"],
            ),
            3,
        ),
    }


# ----------------------------------------------------------------------
# Bench 8: sharded fleet scatter-gather scaling (PR 7)
# ----------------------------------------------------------------------

def bench_fleet(min_time: float) -> dict:
    """The PR 7 tentpole gate: multiget throughput scaling 1 -> 8 shards.

    Both fleets are preloaded with identical items and serve the SAME
    deterministic multiget stream, dispatched the way an open-loop
    front-end actually sees it: in *waves* of concurrent in-flight
    multigets (``Fleet.multiget_wave``), where every shard receives one
    ``handle_batch`` pipeline per wave — one domain activation record per
    shard per wave, amortising the per-``handle`` entry cost that would
    otherwise dominate both sides equally and flatten the ratio.
    Throughput is computed over the fleet's *critical path* — the
    front-end's serial host time (routing via the route cache, request
    building, reassembly) plus, per wave, the slowest shard's pipeline
    (its ``get_many`` service AND its response split, which pipelines
    with the other shards) — what a wall clock in front of N real
    parallel nodes would read. On 1 shard every multiget is whole-shard,
    so it rides the no-parse fast path; on 8 shards each shard serves
    ~1/8 of the wave's keys. The >= 3x gate protects exactly the three
    fast paths that make that split profitable: cached O(1) routing,
    coalesced per-shard pipelines, and verbatim whole-shard responses.
    Rounds alternate 1-shard/8-shard back to back and the reported
    speedup is the median of per-round ratios, the same drift-cancelling
    discipline as ``_paired_ratio``.

    A seeded end-to-end fleet run (arrivals + failover + ledger) is
    recorded alongside as ``fleet_run`` — informational, asserted by the
    driver's own test suite rather than gated here.
    """
    import random as _random

    from repro.fleet import Fleet, FleetRunConfig, HealthConfig, run_fleet

    ITEM_COUNT = 4_000
    MULTIGET_SIZE = 16
    WAVE = 32  # concurrent in-flight multigets coalesced per wave
    WAVES = 8
    TOTAL_KEYS = WAVES * WAVE * MULTIGET_SIZE
    items = [(b"user:%06d" % i, b"v" * 32) for i in range(ITEM_COUNT)]
    key_rng = _random.Random(0xF1EE7)
    waves = [
        [
            [
                items[key_rng.randrange(ITEM_COUNT)][0]
                for _ in range(MULTIGET_SIZE)
            ]
            for _ in range(WAVE)
        ]
        for _ in range(WAVES)
    ]

    fleets = {}
    for count in (1, 8):
        fleet = Fleet(count, seed=0, track_host_time=True)
        stored = fleet.set_many(list(items))
        assert stored == ITEM_COUNT
        fleets[count] = fleet
    # Wave serving must be byte-identical to one-at-a-time single-shard
    # serving of the same multigets, on both fleets.
    reference = [fleets[1].multiget(list(keys)) for keys in waves[0]]
    assert fleets[1].multiget_wave(waves[0]) == reference
    assert fleets[8].multiget_wave(waves[0]) == reference

    def run_round(fleet: "Fleet") -> dict:
        fleet.reset_host_time()
        wave = fleet.multiget_wave
        for batch in waves:
            wave(batch)
        snap = fleet.host_time_snapshot()
        snap["keys_per_sec"] = TOTAL_KEYS / snap["makespan_s"]
        return snap

    # Warm both serving paths before timing.
    for fleet in fleets.values():
        run_round(fleet)

    # Many short paired rounds spread across _REPEAT windows: the median
    # of per-round ratios shrugs off a noise burst unless it covers most
    # of the total measurement span, not just one window.
    rounds = max(3, int(min_time / 0.01))
    samples: dict = {1: [], 8: []}
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(_REPEAT):
            gc.collect()
            gc.disable()
            try:
                for _ in range(rounds):
                    # Back-to-back per round: both sides sit in the same
                    # drift.
                    for count in (1, 8):
                        samples[count].append(run_round(fleets[count]))
            finally:
                if gc_was_enabled:
                    gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()

    ratios = sorted(
        eight["keys_per_sec"] / one["keys_per_sec"]
        for one, eight in zip(samples[1], samples[8])
    )
    mid = len(ratios) // 2
    speedup = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )

    def summarize(rounds_list: list) -> dict:
        best = max(rounds_list, key=lambda s: s["keys_per_sec"])
        return {
            "keys_per_sec": round(best["keys_per_sec"], 1),
            "serial_s": round(best["serial_s"], 6),
            "critical_s": round(best["critical_s"], 6),
            "parallel_total_s": round(best["parallel_total_s"], 6),
            "makespan_s": round(best["makespan_s"], 6),
            "round_rates": [round(s["keys_per_sec"], 1) for s in rounds_list],
        }

    report = run_fleet(
        FleetRunConfig(
            shards=8,
            seed=0,
            keyspace=1_000_000,
            rate=4_000.0,
            horizon=1.0 if min_time >= 0.25 else 0.25,
            preload=2_000,
            kill_at=0.3 if min_time >= 0.25 else None,
            kill_shard="shard-1",
            outage=0.2,
            health_config=HealthConfig(probe_interval=0.05),
        )
    )
    return {
        "fleet_1shard": summarize(samples[1]),
        "fleet_8shard": summarize(samples[8]),
        "multiget_speedup_8x1": round(speedup, 2),
        "multiget_size": MULTIGET_SIZE,
        "wave_size": WAVE,
        "fleet_run": report.as_dict(),
    }


# ----------------------------------------------------------------------
# Bench 9: isolation-backend substrates on the memcached E1 path (PR 8)
# ----------------------------------------------------------------------

def bench_backends(min_time: float) -> dict:
    """The PR 8 tentpole: the same serving mix on each substrate.

    Every configuration runs the memcached E1 path — per-connection
    isolation, the 16-key set/get mix through the unsafe parser — on a
    runtime constructed over a different :class:`IsolationBackend`.
    ``default`` (no ``backend=`` argument) and ``mpk`` (the explicit
    spelling) must be the same machine: their paired ratio is gated at
    >= 0.75 so the backend indirection can never quietly tax the path
    every earlier PR measured. ``cheri`` (grant-set gate, unbounded
    tags) and ``sfi`` (per-access tax accounting on the virtual clock)
    are recorded alongside — informational, since their *virtual* costs
    are the modelled substrate differences while their *wall-clock*
    rates mostly measure the shared gate machinery. All four are
    measured interleaved, same drift discipline as ``memcached_e2e``."""

    def requests() -> list[bytes]:
        reqs = []
        for i in range(16):
            value = b"v" * 64
            reqs.append(b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value))
            reqs.append(b"get key%d\r\n" % i)
        return reqs

    def make_loop(backend):
        runtime = SdradRuntime(backend=backend)
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("bench-client")
        reqs = requests()

        def loop(n: int) -> None:
            handle = server.handle
            for i in range(n):
                handle("bench-client", reqs[i % len(reqs)])

        return loop

    measured = _measure_group(
        {
            "default": make_loop(None),
            "mpk": make_loop("mpk"),
            "cheri": make_loop("cheri"),
            "sfi": make_loop("sfi"),
        },
        min_time=min_time,
        batch=32,
        rounds=max(_REPEAT, 4),
    )
    return {
        **measured,
        "mpk_vs_default": round(
            _paired_ratio(measured["mpk"], measured["default"]), 3
        ),
        "cheri_vs_mpk": round(
            _paired_ratio(measured["cheri"], measured["mpk"]), 3
        ),
        "sfi_vs_mpk": round(
            _paired_ratio(measured["sfi"], measured["mpk"]), 3
        ),
    }


# ----------------------------------------------------------------------
# Bench 10: statistical fault-load campaign (PR 10)
# ----------------------------------------------------------------------

def bench_campaign(min_time: float) -> dict:
    """The PR 10 campaign loop — informational, never gated.

    ``sampling`` measures the stratified sampler's injection throughput:
    each call builds a fresh two-stratum sampler and runs one round per
    stratum (fresh runtime, arrival plan, severity draws, background
    requests, ledger fold) — the unit of work the sequential stopping rule
    repeats. ``closed_loop_seconds`` times one tiny seeded campaign end to
    end (sample -> fit -> decide -> validate, fleet application skipped)
    so a cost blow-up anywhere in the loop shows in the recorded file."""
    from repro.campaigns import CampaignConfig, CampaignSampler, run_campaign
    from repro.campaigns.strata import InjectionPhase
    from repro.faultinj.models import FaultKind

    cfg = CampaignConfig(
        kinds=(FaultKind.STACK_SMASH, FaultKind.HEAP_OVERFLOW),
        domains=("shard-0",),
        phases=(InjectionPhase.ENTRY,),
        backends=("mpk",),
        max_per_stratum=16,
        max_rounds=2,
        validation_injections=8,
    )
    per_step = cfg.batch * len(cfg.strata())

    def loop(n: int) -> None:
        for _ in range(max(1, n // per_step)):
            sampler = CampaignSampler(cfg)
            sampler.step()

    sampling = _measure(loop, min_time=min_time, batch=per_step)
    start = time.perf_counter()
    report = run_campaign(cfg, run_fleet=False)
    closed_loop = time.perf_counter() - start
    return {
        "sampling": sampling,
        "closed_loop_seconds": round(closed_loop, 3),
        "closed_loop_rounds": report.rounds,
    }


# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_PR10.json",
        help="output JSON path (default: BENCH_PR10.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter runs (noisier numbers, for smoke-testing the harness)",
    )
    parser.add_argument(
        "--only",
        help="comma-separated bench names to run (default: all)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="best-of-N timed windows per measurement (default: 3)",
    )
    args = parser.parse_args()
    min_time = 0.05 if args.quick else 0.25
    global _REPEAT
    _REPEAT = 1 if args.quick else max(1, args.repeat)

    all_benches = (
        ("raw_access", bench_raw_access),
        ("access_plans", bench_access_plans),
        ("domain_switch", bench_domain_switch),
        ("fault_rewind", bench_fault_rewind),
        ("kvstore_e2e", bench_kvstore_e2e),
        ("memcached_e2e", bench_memcached_e2e),
        ("domain_reentry", bench_domain_reentry),
        ("memcached_obs", bench_memcached_obs),
        ("fleet", bench_fleet),
        ("backends", bench_backends),
        ("campaign", bench_campaign),
    )
    selected = dict(all_benches)
    if args.only:
        wanted = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in wanted if name not in selected]
        if unknown:
            parser.error(
                f"unknown bench(es) {', '.join(unknown)}; "
                f"choose from {', '.join(selected)}"
            )
        selected = {name: selected[name] for name in wanted}

    out = Path(args.out)
    results = {
        "schema": 7,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": _REPEAT,
        "benches": {},
    }
    if args.only and out.exists():
        # A partial run (make bench-obs / bench-plans) refreshes only the
        # selected benches; the other entries in the recorded file — which
        # the regression gate and the absolute targets read — must survive.
        try:
            previous = json.loads(out.read_text())
        except ValueError:
            previous = None
        if isinstance(previous, dict) and isinstance(previous.get("benches"), dict):
            results["benches"].update(previous["benches"])
    for name, fn in all_benches:
        if name not in selected:
            continue
        print(f"[bench] {name} ...", flush=True)
        result = fn(min_time)
        for config in result.values():
            # Per-call rates feed the paired-ratio estimator in-process;
            # hundreds of floats per config are noise in the recorded file.
            if isinstance(config, dict):
                config.pop("_call_rates", None)
        results["benches"][name] = result
        # Drop the bench's runtimes/arenas before the next one runs, so a
        # later bench's GC pauses are not inflated by this bench's heap.
        gc.collect()

    out.write_text(json.dumps(results, indent=2) + "\n")

    b = results["benches"]
    print(f"\nresults -> {out}")
    if "raw_access" in b:
        print(
            f"  raw_access    : {b['raw_access']['tlb_on']['ops_per_sec']:>12,.0f} ops/s"
            f"  (tlb off {b['raw_access']['tlb_off']['ops_per_sec']:,.0f},"
            f" speedup {b['raw_access']['speedup']}x)"
        )
    if "access_plans" in b:
        p = b["access_plans"]
        print(
            f"  access_plans  : {p['plan_on']['ops_per_sec']:>12,.0f} iters/s"
            f"  (plan off {p['plan_off']['ops_per_sec']:,.0f},"
            f" speedup {p['speedup']}x)"
        )
    if "domain_switch" in b:
        print(f"  domain_switch : {b['domain_switch']['ops_per_sec']:>12,.0f} ops/s")
    if "fault_rewind" in b:
        print(
            f"  fault_rewind  : {b['fault_rewind']['lazy']['ops_per_sec']:>12,.0f} ops/s"
            f"  (eager {b['fault_rewind']['eager']['ops_per_sec']:,.0f},"
            f" lazy speedup {b['fault_rewind']['speedup']}x)"
        )
    if "kvstore_e2e" in b:
        print(
            f"  kvstore_e2e   : {b['kvstore_e2e']['tlb_on']['ops_per_sec']:>12,.0f} req/s"
            f"  (tlb off {b['kvstore_e2e']['tlb_off']['ops_per_sec']:,.0f},"
            f" speedup {b['kvstore_e2e']['speedup']}x)"
        )
    if "memcached_e2e" in b:
        m = b["memcached_e2e"]
        print(
            f"  memcached_e2e : {m['batched']['ops_per_sec']:>12,.0f} req/s batched"
            f"  (per-conn {m['per_connection']['ops_per_sec']:,.0f},"
            f" per-req {m['per_request']['ops_per_sec']:,.0f},"
            f" fastpath off {m['fastpath_off']['ops_per_sec']:,.0f},"
            f" baseline {m['baseline']['ops_per_sec']:,.0f},"
            f" vs baseline {m['speedup_vs_baseline']}x)"
        )
    if "domain_reentry" in b:
        r = b["domain_reentry"]
        print(
            f"  domain_reentry: {r['reentry_on']['ops_per_sec']:>12,.0f} ops/s"
            f"  (cache off {r['reentry_off']['ops_per_sec']:,.0f},"
            f" speedup {r['speedup']}x)"
        )
    if "memcached_obs" in b:
        o = b["memcached_obs"]
        print(
            f"  memcached_obs : {o['obs_off']['ops_per_sec']:>12,.0f} req/s obs off"
            f"  (full tracing {o['obs_on']['ops_per_sec']:,.0f},"
            f" 1% sampled {o['obs_sampled_1pct']['ops_per_sec']:,.0f},"
            f" off/on {o['overhead_full']}x,"
            f" per-req {o['overhead_full_per_request']}x)"
        )
    if "fleet" in b:
        f = b["fleet"]
        run = f["fleet_run"]
        print(
            f"  fleet         : {f['fleet_8shard']['keys_per_sec']:>12,.0f} keys/s"
            f" 8-shard multiget"
            f"  (1-shard {f['fleet_1shard']['keys_per_sec']:,.0f},"
            f" speedup {f['multiget_speedup_8x1']}x;"
            f" run avail {run['availability']:.4f},"
            f" p99 {run['p99'] * 1e6:.0f}us)"
        )
    if "backends" in b:
        k = b["backends"]
        print(
            f"  backends      : {k['mpk']['ops_per_sec']:>12,.0f} req/s mpk"
            f"  (default {k['default']['ops_per_sec']:,.0f},"
            f" cheri {k['cheri']['ops_per_sec']:,.0f},"
            f" sfi {k['sfi']['ops_per_sec']:,.0f},"
            f" mpk/default {k['mpk_vs_default']}x)"
        )
    if "campaign" in b:
        c = b["campaign"]
        print(
            f"  campaign      : {c['sampling']['ops_per_sec']:>12,.0f} inj/s"
            f"  (closed loop {c['closed_loop_seconds']}s,"
            f" {c['closed_loop_rounds']} round(s))"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
