#!/usr/bin/env python
"""Wall-clock performance harness for the simulated memory system.

Measures the *host-time* cost of the simulation itself — not the virtual
time the cost model charges (those numbers are what the experiments report
and are unchanged by any of this). Four benches:

* ``raw_access``     — checked load/store on a hot page, software TLB on
                       vs. off (the tentpole speedup; the off run is the
                       seed behaviour);
* ``domain_switch``  — enter/exit a persistent domain with a trivial body;
* ``fault_rewind``   — inject a stack smash and rewind, lazy vs. eager
                       scrub (the E2b ablation axis, now also a wall-clock
                       axis);
* ``kvstore_e2e``    — the Memcached retrofit end-to-end: per-connection
                       isolation, set/get mix through the unsafe parser,
                       TLB on vs. off;
* ``memcached_e2e``  — the PR 2 pipeline: the same mix per-connection,
                       per-request, batched (16-request pipelines through
                       ``handle_batch``), and with the domain re-entry
                       fast path disabled (the PR 1 baseline behaviour);
* ``domain_reentry`` — enter/exit a persistent domain with the entry-
                       ticket cache on vs. off, isolating the re-entry
                       fast path from protocol work;
* ``memcached_obs``  — the PR 5 no-op fast-path check: the memcached
                       set/get mix with observability disabled (the
                       default, must track ``memcached_e2e``) vs. a live
                       ``Observability`` hub at sampling 1.0 and 0.01.

Writes machine-readable results (ops/sec plus on/off speedups) to a JSON
file — ``BENCH_PR5.json`` by default — which ``check_bench_regression.py``
compares across PRs.

Usage::

    PYTHONPATH=src python scripts/bench.py [--out BENCH_PR5.json] [--quick]
        [--only memcached_obs,...] [--repeat 3]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime


#: Best-of-N repeats per measurement, settable via ``--repeat``. Wall-clock
#: rates on a shared VM swing by 20%+ between runs; taking the best of a few
#: independent timed windows (the ``timeit.repeat`` recipe) recovers a stable
#: estimate of what the code can do when the machine is not being preempted.
_REPEAT = 1


def _measure(fn, *, min_time: float = 0.25, batch: int = 1) -> dict:
    """Run ``fn(n)`` (which performs ``n`` operations) until ``min_time``
    seconds of wall-clock have accumulated; return ops/sec statistics for
    the best of ``_REPEAT`` such windows."""
    # Warm up and calibrate the batch size so one call takes ~10 ms.
    n = batch
    while True:
        start = time.perf_counter()
        fn(n)
        elapsed = time.perf_counter() - start
        if elapsed >= 0.01:
            break
        n *= 4
    result = None
    for _ in range(max(1, _REPEAT)):
        best = 0.0
        total_ops = 0
        total_time = 0.0
        while total_time < min_time:
            start = time.perf_counter()
            fn(n)
            elapsed = time.perf_counter() - start
            rate = n / elapsed
            best = max(best, rate)
            total_ops += n
            total_time += elapsed
        window = {
            "ops_per_sec": round(total_ops / total_time, 1),
            "best_ops_per_sec": round(best, 1),
            "ops": total_ops,
            "seconds": round(total_time, 4),
        }
        if result is None or window["ops_per_sec"] > result["ops_per_sec"]:
            result = window
    return result


# ----------------------------------------------------------------------
# Bench 1: raw checked access
# ----------------------------------------------------------------------

def bench_raw_access(min_time: float) -> dict:
    def run(tlb: bool) -> dict:
        space = AddressSpace(size=PAGE_SIZE * 16, tlb_enabled=tlb)
        space.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
        space.store(64, b"x" * 32)

        def loop(n: int) -> None:
            load = space.load
            store = space.store
            payload = b"y" * 32
            for _ in range(n // 2):
                load(64, 32)
                store(64, payload)

        return _measure(loop, min_time=min_time, batch=2048)

    on = run(True)
    off = run(False)
    return {
        "tlb_on": on,
        "tlb_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 2: domain switch
# ----------------------------------------------------------------------

def bench_domain_switch(min_time: float) -> dict:
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

    def body(handle):
        return None

    def loop(n: int) -> None:
        execute = runtime.execute
        udi = domain.udi
        for _ in range(n):
            execute(udi, body)

    return _measure(loop, min_time=min_time, batch=64)


# ----------------------------------------------------------------------
# Bench 3: fault -> rewind cycle
# ----------------------------------------------------------------------

def bench_fault_rewind(min_time: float) -> dict:
    def smash(handle):
        frame = handle.push_frame("victim")
        buf = frame.alloca(32)
        frame.write_buffer(buf, b"A" * 128)  # canary smash

    def run(mode: str) -> dict:
        runtime = SdradRuntime(scrub_mode=mode)
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )

        def loop(n: int) -> None:
            execute = runtime.execute
            udi = domain.udi
            for _ in range(n):
                result = execute(udi, smash)
                assert not result.ok

        return _measure(loop, min_time=min_time, batch=32)

    lazy = run("lazy")
    eager = run("eager")
    return {
        "lazy": lazy,
        "eager": eager,
        "speedup": round(lazy["ops_per_sec"] / eager["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 4: kvstore end-to-end
# ----------------------------------------------------------------------

def bench_kvstore_e2e(min_time: float) -> dict:
    def run(tlb: bool) -> dict:
        runtime = SdradRuntime(space=AddressSpace(tlb_enabled=tlb))
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("bench-client")
        requests = []
        for i in range(16):
            value = b"v" * 64
            requests.append(
                b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value)
            )
            requests.append(b"get key%d\r\n" % i)

        def loop(n: int) -> None:
            handle = server.handle
            reqs = requests
            for i in range(n):
                handle("bench-client", reqs[i % len(reqs)])

        return _measure(loop, min_time=min_time, batch=32)

    on = run(True)
    off = run(False)
    return {
        "tlb_on": on,
        "tlb_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 5: memcached end-to-end, batching + re-entry fast path (PR 2)
# ----------------------------------------------------------------------

def bench_memcached_e2e(min_time: float) -> dict:
    """The request-pipeline tentpole: per-connection vs. per-request vs.
    batched, plus per-connection with the re-entry cache off (which
    reproduces the PR 1 execution path and is the speedup baseline)."""

    def requests() -> list[bytes]:
        reqs = []
        for i in range(16):
            value = b"v" * 64
            reqs.append(b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value))
            reqs.append(b"get key%d\r\n" % i)
        return reqs

    def run(isolation: IsolationMode, *, batched: bool = False,
            reentry: bool = True) -> dict:
        runtime = SdradRuntime(reentry_cache=reentry)
        server = MemcachedServer(runtime, isolation=isolation)
        server.connect("bench-client")
        reqs = requests()

        if batched:
            batch_size = 16
            batches = [
                reqs[i : i + batch_size]
                for i in range(0, len(reqs), batch_size)
            ]

            def loop(n: int) -> None:
                handle_batch = server.handle_batch
                for i in range(n // batch_size):
                    handle_batch("bench-client", batches[i % len(batches)])

            return _measure(loop, min_time=min_time, batch=batch_size * 2)

        def loop(n: int) -> None:
            handle = server.handle
            for i in range(n):
                handle("bench-client", reqs[i % len(reqs)])

        return _measure(loop, min_time=min_time, batch=32)

    per_connection = run(IsolationMode.PER_CONNECTION)
    per_request = run(IsolationMode.PER_REQUEST)
    batched = run(IsolationMode.PER_CONNECTION, batched=True)
    fastpath_off = run(IsolationMode.PER_CONNECTION, reentry=False)
    return {
        "per_connection": per_connection,
        "per_request": per_request,
        "batched": batched,
        "fastpath_off": fastpath_off,
        "batched_speedup": round(
            batched["ops_per_sec"] / per_connection["ops_per_sec"], 2
        ),
        "speedup_vs_fastpath_off": round(
            batched["ops_per_sec"] / fastpath_off["ops_per_sec"], 2
        ),
    }


# ----------------------------------------------------------------------
# Bench 6: domain re-entry fast path in isolation
# ----------------------------------------------------------------------

def bench_domain_reentry(min_time: float) -> dict:
    """Same loop as ``domain_switch``, but explicitly contrasting the
    entry-ticket cache on (PR 2) vs. off (the PR 1 enter/exit path)."""

    def run(reentry: bool) -> dict:
        runtime = SdradRuntime(reentry_cache=reentry)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def body(handle):
            return None

        def loop(n: int) -> None:
            execute = runtime.execute
            udi = domain.udi
            for _ in range(n):
                execute(udi, body)

        return _measure(loop, min_time=min_time, batch=64)

    on = run(True)
    off = run(False)
    return {
        "reentry_on": on,
        "reentry_off": off,
        "speedup": round(on["ops_per_sec"] / off["ops_per_sec"], 2),
    }


# ----------------------------------------------------------------------
# Bench 7: observability overhead (PR 5)
# ----------------------------------------------------------------------

def bench_memcached_obs(min_time: float) -> dict:
    """Observability's cost contract: ``obs=None`` (the default) must cost
    one attribute load per instrumentation site, and a sampled hub must
    stay affordable. ``obs_off`` is tracked by the regression gate against
    ``memcached_e2e.per_connection`` history."""
    from repro.obs import Observability

    def requests() -> list[bytes]:
        reqs = []
        for i in range(16):
            value = b"v" * 64
            reqs.append(b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value))
            reqs.append(b"get key%d\r\n" % i)
        return reqs

    def run(obs) -> dict:
        runtime = SdradRuntime(obs=obs)
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("bench-client")
        reqs = requests()

        def loop(n: int) -> None:
            handle = server.handle
            for i in range(n):
                handle("bench-client", reqs[i % len(reqs)])

        return _measure(loop, min_time=min_time, batch=32)

    off = run(None)
    # Unbounded span buffers would grow all benchmark long; cap like a
    # production deployment would and let the buffer drop.
    on = run(Observability(sampling=1.0, span_capacity=50_000))
    sampled = run(Observability(sampling=0.01, span_capacity=50_000))
    return {
        "obs_off": off,
        "obs_on": on,
        "obs_sampled_1pct": sampled,
        "overhead_full": round(off["ops_per_sec"] / on["ops_per_sec"], 3),
        "overhead_sampled": round(
            off["ops_per_sec"] / sampled["ops_per_sec"], 3
        ),
    }


# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_PR5.json",
        help="output JSON path (default: BENCH_PR5.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter runs (noisier numbers, for smoke-testing the harness)",
    )
    parser.add_argument(
        "--only",
        help="comma-separated bench names to run (default: all)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="best-of-N timed windows per measurement (default: 3)",
    )
    args = parser.parse_args()
    min_time = 0.05 if args.quick else 0.25
    global _REPEAT
    _REPEAT = 1 if args.quick else max(1, args.repeat)

    all_benches = (
        ("raw_access", bench_raw_access),
        ("domain_switch", bench_domain_switch),
        ("fault_rewind", bench_fault_rewind),
        ("kvstore_e2e", bench_kvstore_e2e),
        ("memcached_e2e", bench_memcached_e2e),
        ("domain_reentry", bench_domain_reentry),
        ("memcached_obs", bench_memcached_obs),
    )
    selected = dict(all_benches)
    if args.only:
        wanted = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in wanted if name not in selected]
        if unknown:
            parser.error(
                f"unknown bench(es) {', '.join(unknown)}; "
                f"choose from {', '.join(selected)}"
            )
        selected = {name: selected[name] for name in wanted}

    results = {
        "schema": 3,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": _REPEAT,
        "benches": {},
    }
    for name, fn in all_benches:
        if name not in selected:
            continue
        print(f"[bench] {name} ...", flush=True)
        results["benches"][name] = fn(min_time)

    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")

    b = results["benches"]
    print(f"\nresults -> {out}")
    if "raw_access" in b:
        print(
            f"  raw_access    : {b['raw_access']['tlb_on']['ops_per_sec']:>12,.0f} ops/s"
            f"  (tlb off {b['raw_access']['tlb_off']['ops_per_sec']:,.0f},"
            f" speedup {b['raw_access']['speedup']}x)"
        )
    if "domain_switch" in b:
        print(f"  domain_switch : {b['domain_switch']['ops_per_sec']:>12,.0f} ops/s")
    if "fault_rewind" in b:
        print(
            f"  fault_rewind  : {b['fault_rewind']['lazy']['ops_per_sec']:>12,.0f} ops/s"
            f"  (eager {b['fault_rewind']['eager']['ops_per_sec']:,.0f},"
            f" lazy speedup {b['fault_rewind']['speedup']}x)"
        )
    if "kvstore_e2e" in b:
        print(
            f"  kvstore_e2e   : {b['kvstore_e2e']['tlb_on']['ops_per_sec']:>12,.0f} req/s"
            f"  (tlb off {b['kvstore_e2e']['tlb_off']['ops_per_sec']:,.0f},"
            f" speedup {b['kvstore_e2e']['speedup']}x)"
        )
    if "memcached_e2e" in b:
        m = b["memcached_e2e"]
        print(
            f"  memcached_e2e : {m['batched']['ops_per_sec']:>12,.0f} req/s batched"
            f"  (per-conn {m['per_connection']['ops_per_sec']:,.0f},"
            f" per-req {m['per_request']['ops_per_sec']:,.0f},"
            f" fastpath off {m['fastpath_off']['ops_per_sec']:,.0f},"
            f" batched speedup {m['speedup_vs_fastpath_off']}x)"
        )
    if "domain_reentry" in b:
        r = b["domain_reentry"]
        print(
            f"  domain_reentry: {r['reentry_on']['ops_per_sec']:>12,.0f} ops/s"
            f"  (cache off {r['reentry_off']['ops_per_sec']:,.0f},"
            f" speedup {r['speedup']}x)"
        )
    if "memcached_obs" in b:
        o = b["memcached_obs"]
        print(
            f"  memcached_obs : {o['obs_off']['ops_per_sec']:>12,.0f} req/s obs off"
            f"  (full tracing {o['obs_on']['ops_per_sec']:,.0f},"
            f" 1% sampled {o['obs_sampled_1pct']['ops_per_sec']:,.0f},"
            f" off/on {o['overhead_full']}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
