#!/usr/bin/env python
"""Run the observed memcached demo and print the obs report.

Thin wrapper over :mod:`repro.obs.report` (the same code backs
``python -m repro obs``), kept as a script so CI and operators can run it
without installing the package.

Usage::

    PYTHONPATH=src python scripts/obs_report.py [--requests 200]
        [--clients 4] [--sampling 1.0] [--dataset-gib 10]
        [--trace-out trace.jsonl] [--metrics-out metrics.prom]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.report import run_and_report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--sampling", type=float, default=1.0)
    parser.add_argument("--dataset-gib", type=float, default=10.0)
    parser.add_argument("--trace-out")
    parser.add_argument("--metrics-out")
    args = parser.parse_args()

    text, code = run_and_report(
        requests=args.requests,
        clients=args.clients,
        sampling=args.sampling,
        dataset_gib=args.dataset_gib,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
    )
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
