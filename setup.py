"""Legacy shim so offline environments without the `wheel` package can do
``pip install -e . --no-build-isolation``; metadata lives in pyproject.toml."""

from setuptools import setup

setup()
