"""E7 — retrofit effort: how much code compartmentalisation costs.

Paper claim (§II): "we changed two source files in Memcached and added 484
new lines of wrapper code" — and §III's motivation: SDRaD-FFI's annotations
should shrink that to almost nothing.

Reproduced as: static accounting over our own replicas. For each use case we
measure (a) the lines of the *core application logic* (which a retrofit does
not touch) and (b) the lines of the *integration layer* (server wrapper that
creates domains, routes requests through them and maps faults to protocol
errors) — the analogue of the paper's 484-line patch. For the FFI path we
count the lines a `@sandboxed` annotation costs per function. Expected
shape: integration layers of a few hundred lines per use case (same order as
the paper's patch), and ~1 line per function for the FFI route.
"""

from __future__ import annotations

import inspect

import pytest

from repro.apps import (
    http,
    kvstore,
    memcached_server,
    nginx_server,
    openssl_service,
    tls,
)
from repro.sustainability.report import format_table


def code_lines(module) -> int:
    """Non-blank, non-comment, non-docstring-only source lines."""
    source = inspect.getsource(module)
    count = 0
    in_doc = False
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(('"""', "'''")):
            # toggle docstring state (handles one-line docstrings)
            if not (in_doc is False and stripped.endswith(('"""', "'''")) and len(stripped) > 3):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count


USE_CASES = [
    ("memcached", kvstore, memcached_server),
    ("nginx", http, nginx_server),
    ("openssl", tls, openssl_service),
]


def test_e7_retrofit_effort_table(experiment_printer):
    rows = []
    for name, core, integration in USE_CASES:
        core_lines = code_lines(core)
        glue_lines = code_lines(integration)
        rows.append(
            (
                name,
                core_lines,
                glue_lines,
                f"{glue_lines / (core_lines + glue_lines) * 100:.0f} %",
            )
        )
    experiment_printer(
        "E7 — retrofit effort per use case "
        "(paper: Memcached patch = 2 files, 484 added lines)",
        format_table(
            ("use case", "core app lines", "integration lines", "glue share"), rows
        ),
    )


def test_e7_integration_same_order_as_paper():
    """Each integration layer is within ~2x of the paper's 484-line patch."""
    for name, _core, integration in USE_CASES:
        glue = code_lines(integration)
        assert 50 < glue < 2 * 484, f"{name}: {glue} lines"


def test_e7_ffi_annotation_is_one_line():
    """The SDRaD-FFI route: sandboxing a function costs one decorator line
    (plus sandbox setup shared across all functions)."""
    from repro.ffi.sandbox import Sandbox
    from repro.sdrad.runtime import SdradRuntime

    sandbox = Sandbox(SdradRuntime())

    # the entire retrofit of this "legacy function":
    @sandbox.sandboxed  # <- one line
    def legacy_parse(data):
        return len(data)

    assert legacy_parse(b"abc") == 3


def test_e7_api_vocabulary_matches_c_library():
    """The facade exposes the call vocabulary the paper's patch uses, so
    line counts are comparable like-for-like."""
    from repro.sdrad.api import SdradApi

    expected = {"sdrad_init", "sdrad_deinit", "sdrad_enter", "sdrad_malloc",
                "sdrad_free", "sdrad_dprotect"}
    assert expected <= {name for name in dir(SdradApi) if name.startswith("sdrad_")}


@pytest.mark.benchmark(group="e7-effort")
def test_e7_bench_line_accounting(benchmark):
    benchmark(lambda: [code_lines(m) for _n, c, i in USE_CASES for m in (c, i)])
