"""E12 (extension) — recovery under a time-varying grid (§IV deepened).

§IV asks for life-cycle assessment "with a focus on environmental
sustainability through energy efficiency". Grid carbon intensity is not a
constant: it swings ~2× over a day. This experiment decomposes the carbon
picture under the diurnal model:

* the recovery windows themselves (restart minutes vs rewind microseconds),
  including the operator's *timing exposure* (faults are not schedulable,
  so restart emissions land wherever the faults land);
* the avoided hot standby, which burns through every evening peak;
* the one lever restart-based operations do have — scheduling *planned*
  reloads into the overnight trough — and how little it recovers.

Expected shape: recovery-window emissions are grams (noise) for rewind and
measurable-but-small for restart; the standby replica dominates everything
by 3+ orders of magnitude, confirming that §IV's replica-avoidance argument
is robust to grid-intensity refinements.
"""

from __future__ import annotations

import pytest

from repro.faultinj.campaign import PeriodicArrivals
from repro.sim.clock import HOURS, YEARS
from repro.sustainability.grid import (
    DiurnalIntensity,
    best_maintenance_window,
    recovery_emissions,
    standby_replica_emissions_g,
)
from repro.sustainability.report import format_table

GRID = DiurnalIntensity()
RESTART_POWER_W = 320.0  # reload pegs the server
REWIND_POWER_W = 320.0
STANDBY_POWER_W = 154.0  # idle draw × PUE
FAULTS = 50


def fault_times() -> list[float]:
    return list(PeriodicArrivals(FAULTS).times(YEARS))


def test_e12_recovery_emissions_table(experiment_printer):
    times = fault_times()
    restart = recovery_emissions("process-restart", times, 120.0, RESTART_POWER_W, GRID)
    rewind = recovery_emissions("sdrad-rewind", times, 3.5e-6, REWIND_POWER_W, GRID)
    standby = standby_replica_emissions_g(GRID, STANDBY_POWER_W, YEARS)
    rows = [
        (
            r.strategy,
            f"{r.recovery_emissions_g:.3f} g",
            f"{r.best_case_g:.3f} g",
            f"{r.worst_case_g:.3f} g",
        )
        for r in (restart, rewind)
    ]
    rows.append(("hot standby (avoided)", f"{standby:.0f} g", "-", "-"))
    experiment_printer(
        f"E12 — yearly recovery-window emissions under a diurnal grid "
        f"({FAULTS} faults/yr; mean {GRID.mean_g_per_kwh:.0f} g/kWh, "
        f"peak {GRID.peak():.0f}, trough {GRID.trough():.0f})",
        format_table(
            ("source", "emissions/yr", "best-case timing", "worst-case timing"),
            rows,
        ),
    )


def test_e12_rewind_emissions_are_noise():
    result = recovery_emissions(
        "rewind", fault_times(), 3.5e-6, REWIND_POWER_W, GRID
    )
    assert result.recovery_emissions_g < 1e-3  # under a milligram


def test_e12_standby_dominates_by_orders_of_magnitude():
    restart = recovery_emissions(
        "restart", fault_times(), 120.0, RESTART_POWER_W, GRID
    )
    standby = standby_replica_emissions_g(GRID, STANDBY_POWER_W, YEARS)
    assert standby > 1000 * restart.recovery_emissions_g


def test_e12_restart_has_timing_exposure_rewind_does_not():
    times = fault_times()
    restart = recovery_emissions("restart", times, 120.0, RESTART_POWER_W, GRID)
    spread_restart = restart.worst_case_g - restart.best_case_g
    rewind = recovery_emissions("rewind", times, 3.5e-6, REWIND_POWER_W, GRID)
    spread_rewind = rewind.worst_case_g - rewind.best_case_g
    assert spread_restart > 1.0  # grams of exposure
    assert spread_rewind < 1e-4  # sub-milligram: nothing to schedule


def test_e12_maintenance_window_lever(experiment_printer):
    """Planned 2-hour reload windows: chasing the trough helps planned work,
    but fault-triggered restarts cannot use it."""
    start, trough_mean = best_maintenance_window(GRID, 2 * HOURS)
    peak_mean = GRID.mean_over(19 * HOURS, 2 * HOURS)
    experiment_printer(
        "E12b — planned-window scheduling lever (2 h reload)",
        format_table(
            ("window", "start", "mean intensity"),
            [
                ("best (trough)", f"{start / HOURS:04.1f} h", f"{trough_mean:.0f} g/kWh"),
                ("worst (peak)", "19.0 h", f"{peak_mean:.0f} g/kWh"),
            ],
        ),
    )
    assert trough_mean < 0.75 * peak_mean


@pytest.mark.benchmark(group="e12-grid")
def test_e12_bench_yearly_integration(benchmark):
    benchmark(standby_replica_emissions_g, GRID, STANDBY_POWER_W, YEARS)
