# Benchmark package: one module per experiment in DESIGN.md §4.
