"""E6 — the serialization-crate comparison SDRaD-FFI plans (§III).

Paper (§III): "SDRaD-FFI can support arbitrary argument passing between
domains using different Rust serialization crates. We plan to evaluate
different serialization crates and our solution in real-world use cases."

Reproduced as: a sandboxed echo function driven over a payload-size sweep,
once per serializer, measuring virtual time per call (fixed sandbox costs +
serialize/copy/deserialize both ways). Expected shape: bincode-like binary
wins, JSON-like text loses, the gap widens with payload size; the ablation
also shows the persistent-domain vs fresh-domain-per-call trade.
"""

from __future__ import annotations

import pytest

from repro.ffi.sandbox import Sandbox
from repro.ffi.serialization import available_serializers
from repro.sdrad.runtime import SdradRuntime
from repro.sustainability.report import format_seconds, format_table

PAYLOAD_SIZES = [64, 1024, 16 * 1024, 128 * 1024]


def time_sandboxed_echo(serializer: str, payload_bytes: int, fresh: bool = False) -> float:
    runtime = SdradRuntime()
    sandbox = Sandbox(runtime, serializer=serializer)

    @sandbox.sandboxed(fresh_domain=fresh, heap_size=1024 * 1024)
    def echo(blob):
        return blob

    payload = b"\x5a" * payload_bytes
    echo(payload)  # warm up: domain creation happens here
    start = runtime.clock.now
    echo(payload)
    return runtime.clock.now - start


def test_e6_serializer_sweep(experiment_printer):
    serializers = available_serializers()
    rows = []
    for size in PAYLOAD_SIZES:
        times = {name: time_sandboxed_echo(name, size) for name in serializers}
        rows.append(
            (f"{size} B",)
            + tuple(format_seconds(times[name]) for name in serializers)
            + (f"{times['json'] / times['bincode']:.1f}x",)
        )
    experiment_printer(
        "E6 — sandboxed call latency by serializer and payload size "
        "(virtual time per call, both directions)",
        format_table(
            ("payload",) + tuple(serializers) + ("json/bincode",), rows
        ),
    )


def test_e6_bincode_fastest_json_slowest():
    size = 64 * 1024
    times = {name: time_sandboxed_echo(name, size) for name in available_serializers()}
    assert times["bincode"] == min(times.values())
    assert times["json"] == max(times.values())


def test_e6_gap_widens_with_payload():
    small_ratio = time_sandboxed_echo("json", 64) / time_sandboxed_echo("bincode", 64)
    large_ratio = time_sandboxed_echo("json", 128 * 1024) / time_sandboxed_echo(
        "bincode", 128 * 1024
    )
    assert large_ratio > small_ratio


def test_e6_fresh_domain_ablation(experiment_printer):
    rows = []
    for size in (64, 16 * 1024):
        persistent = time_sandboxed_echo("bincode", size, fresh=False)
        fresh = time_sandboxed_echo("bincode", size, fresh=True)
        rows.append(
            (
                f"{size} B",
                format_seconds(persistent),
                format_seconds(fresh),
                f"{fresh / persistent:.1f}x",
            )
        )
    experiment_printer(
        "E6b — ablation: persistent sandbox domain vs fresh domain per call",
        format_table(("payload", "persistent", "fresh-per-call", "ratio"), rows),
    )
    assert all(float(r[3].rstrip("x")) > 1.0 for r in rows)


def test_e6_call_latency_microseconds_scale():
    """Sandboxed FFI calls stay in the microsecond regime — cheap enough to
    wrap individual library calls, which is SDRaD-FFI's whole premise."""
    assert time_sandboxed_echo("bincode", 1024) < 5e-6


def test_e6c_real_world_use_case(experiment_printer):
    """§III: "evaluate different serialization crates and our solution in
    real-world use cases" — the image-decoder service, per serializer."""
    from repro.apps.imagelib import ImageService, encode_image, make_test_image

    rows = []
    for side in (8, 32, 64):
        image = make_test_image(side, side, 3)
        data = encode_image(image)
        times = {}
        for name in available_serializers():
            runtime = SdradRuntime()
            service = ImageService(Sandbox(runtime, serializer=name))
            service.decode(data)  # warm-up: domain creation
            before = runtime.clock.now
            assert service.decode(data) == image
            times[name] = runtime.clock.now - before
        rows.append(
            (f"{side}x{side}", f"{image.size_bytes} B")
            + tuple(
                format_seconds(times[name]) for name in available_serializers()
            )
        )
    experiment_printer(
        "E6c — real-world use case: sandboxed image decode per serializer",
        format_table(
            ("image", "pixels") + tuple(available_serializers()), rows
        ),
    )


def test_e6c_exploit_cost_is_serializer_independent():
    """A contained exploit costs one rewind regardless of the crate."""
    from repro.apps.imagelib import ImageService, craft_run_overflow

    costs = {}
    for name in ("bincode", "json"):
        runtime = SdradRuntime()
        service = ImageService(Sandbox(runtime, serializer=name))
        service.decode(craft_run_overflow())  # warm-up + first containment
        before = runtime.clock.now
        service.decode(craft_run_overflow())
        costs[name] = runtime.clock.now - before
    # both dominated by the rewind, not the (tiny) attack marshalling
    assert costs["json"] < 3 * costs["bincode"]


@pytest.mark.benchmark(group="e6-serialization")
@pytest.mark.parametrize("serializer", ["bincode", "json"])
def test_e6_bench_sandboxed_call(benchmark, serializer):
    runtime = SdradRuntime()
    sandbox = Sandbox(runtime, serializer=serializer)

    @sandbox.sandboxed
    def echo(blob):
        return blob

    payload = b"\x5a" * 4096
    echo(payload)
    benchmark(echo, payload)
