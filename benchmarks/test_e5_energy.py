"""E5 — the sustainability comparison at equal availability (§IV).

Paper claim: replication/diversification for availability "can result in
over-provisioning hardware resources and is not environmentally friendly";
SDRaD "supports fast recovery time without replication ... with only
limited runtime overhead".

Reproduced as: for a grid of yearly fault rates, size the smallest
deployment of each strategy that meets five nines, then account operational
energy (kWh) and operational + embodied carbon (kgCO₂e) per service-year.
Expected shape: above ~2.6 faults/year restart-based strategies must add a
replica and their footprint roughly doubles; SDRaD stays at one server with
a few percent extra CPU; the saving survives a moderate rebound effect.
"""

from __future__ import annotations

import pytest

from repro.sim.cost import GIB
from repro.sustainability.lca import LifecycleAssessment
from repro.sustainability.report import format_table, lca_table

LCA = LifecycleAssessment()
FAULT_RATES = [0.5, 1, 2, 3, 5, 10, 50]


def test_e5_lca_table_at_three_faults(experiment_printer):
    rows = LCA.assess(dataset_bytes=10 * GIB, faults_per_year=3)
    experiment_printer(
        "E5 — deployments sized for five nines @ 3 faults/year, 10 GiB state "
        "(energy + carbon per service-year)",
        lca_table(rows),
    )
    by_name = {r.strategy: r for r in rows}
    assert by_name["sdrad-rewind"].replicas == 1
    assert by_name["process-restart"].replicas == 2


def test_e5_replica_requirement_sweep(experiment_printer):
    rows = []
    for rate in FAULT_RATES:
        assessed = {r.strategy: r for r in LCA.assess(10 * GIB, rate)}
        rows.append(
            (
                rate,
                assessed["sdrad-rewind"].replicas,
                assessed["process-restart"].replicas,
                assessed["container-restart"].replicas,
                f"{assessed['process-restart'].total_kg / assessed['sdrad-rewind'].total_kg:.2f}x",
            )
        )
    experiment_printer(
        "E5b — replicas required for five nines vs yearly fault rate "
        "(carbon ratio = restart-deployment / sdrad-deployment)",
        format_table(
            ("faults/yr", "sdrad", "process-restart", "container", "carbon ratio"),
            rows,
        ),
    )
    # crossover: at 2 faults/year restart still fits in one instance...
    assert dict((r[0], r[2]) for r in rows)[2] == 1
    # ...at 3 it must replicate
    assert dict((r[0], r[2]) for r in rows)[3] == 2


def test_e5_sdrad_never_needs_replication():
    for rate in FAULT_RATES:
        rows = {r.strategy: r for r in LCA.assess(10 * GIB, rate)}
        assert rows["sdrad-rewind"].replicas == 1


def test_e5_saving_positive_above_crossover():
    rows = LCA.assess(10 * GIB, 3)
    assert LCA.carbon_saving(rows) > 0


def test_e5_rebound_sensitivity(experiment_printer):
    rows = LCA.assess(10 * GIB, 3)
    table = [
        (f"{rebound:.0%}", f"{LCA.carbon_saving(rows, rebound_fraction=rebound):.1f} kg")
        for rebound in (0.0, 0.3, 0.5, 0.9, 1.0)
    ]
    experiment_printer(
        "E5c — rebound-effect sensitivity of the yearly carbon saving "
        "(paper cites Gossart [4]: honest assessments must include this)",
        format_table(("rebound", "net saving"), table),
    )
    assert LCA.carbon_saving(rows, rebound_fraction=1.0) == 0.0


def test_e5_overhead_energy_is_second_order():
    """SDRaD's 3 % CPU costs far less than a standby's idle power."""
    rows = {r.strategy: r for r in LCA.assess(10 * GIB, 3)}
    low_rate = {r.strategy: r for r in LCA.assess(10 * GIB, 1)}
    overhead_kwh = (
        low_rate["sdrad-rewind"].operational_kwh
        - low_rate["process-restart"].operational_kwh
    )
    replica_kwh = (
        rows["process-restart"].operational_kwh
        - low_rate["process-restart"].operational_kwh
    )
    assert overhead_kwh < 0.1 * replica_kwh


@pytest.mark.benchmark(group="e5-energy")
def test_e5_bench_assessment(benchmark):
    benchmark(LCA.assess, 10 * GIB, 3)
