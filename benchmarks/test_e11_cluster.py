"""E11 (extension) — blast radius in the multi-process deployment.

§II measures SDRaD "in realistic multi-processing scenarios"; real NGINX
deployments already shrink a crash's blast radius to one worker (1/N of the
connections, one restart window). This experiment quantifies what SDRaD adds
*on top of* multi-processing: the same attack trace against a 4-worker
cluster with and without per-connection domains.

Expected shape: the unisolated cluster survives as a whole but keeps losing
1/N capacity windows and resetting connections (the attacker can re-kill a
worker immediately after each restart); the SDRaD cluster loses nothing but
the attacker's own faulted requests.
"""

from __future__ import annotations

import pytest

from repro.apps.cluster import NginxCluster
from repro.apps.memcached_server import IsolationMode
from repro.sim.rng import RngFactory
from repro.sustainability.report import format_table
from repro.workloads.clients import build_population
from repro.workloads.traces import generate_trace

N_REQUESTS = 800
WORKERS = 4


def build_trace(seed: int = 11):
    factory = RngFactory(seed)
    clients = build_population(
        9, 3, None, factory, kind="http", attack_fraction=0.25
    )
    return generate_trace(clients, N_REQUESTS, factory)


def replay(trace, isolation: IsolationMode) -> dict:
    cluster = NginxCluster(workers=WORKERS, isolation=isolation)
    for client in trace.clients:
        cluster.connect(client)
    benign_ok = benign_total = 0
    for entry in trace:
        response = cluster.handle(entry.client_id, entry.payload)
        # advance wall time a little between requests so restart windows
        # and traffic interleave realistically (~1 ms per request)
        cluster.clock.advance(1e-3)
        if not entry.malicious:
            benign_total += 1
            if response.startswith(b"HTTP/1.1 200"):
                benign_ok += 1
    return {
        "isolation": isolation.value,
        "benign_goodput": benign_ok / benign_total,
        "crashes": cluster.metrics.worker_crashes,
        "refused": cluster.metrics.refused_worker_down,
        "resets": cluster.metrics.connections_reset,
        "rewinds": cluster.total_rewinds(),
    }


def test_e11_blast_radius_table(experiment_printer):
    trace = build_trace()
    rows = []
    for isolation in (IsolationMode.PER_CONNECTION, IsolationMode.NONE):
        result = replay(trace, isolation)
        rows.append(
            (
                result["isolation"],
                f"{result['benign_goodput'] * 100:.1f} %",
                result["crashes"],
                result["refused"],
                result["resets"],
                result["rewinds"],
            )
        )
    experiment_printer(
        f"E11 — {WORKERS}-worker cluster, identical {N_REQUESTS}-request "
        f"trace ({trace.malicious_count} attack payloads)",
        format_table(
            (
                "isolation",
                "benign goodput",
                "worker crashes",
                "503s (down)",
                "conn resets",
                "rewinds",
            ),
            rows,
        ),
    )


def test_e11_isolated_cluster_never_crashes_workers():
    result = replay(build_trace(), IsolationMode.PER_CONNECTION)
    assert result["crashes"] == 0
    assert result["refused"] == 0
    assert result["resets"] == 0
    assert result["benign_goodput"] == 1.0
    assert result["rewinds"] > 0


def test_e11_unisolated_cluster_survives_but_bleeds():
    result = replay(build_trace(), IsolationMode.NONE)
    # multi-processing is a real mitigation: the service survives ...
    assert result["crashes"] > 0
    # ... but benign traffic is lost on the crashed workers
    assert result["benign_goodput"] < 1.0


def test_e11_sdrad_beats_multiprocessing_alone():
    isolated = replay(build_trace(), IsolationMode.PER_CONNECTION)
    baseline = replay(build_trace(), IsolationMode.NONE)
    assert isolated["benign_goodput"] > baseline["benign_goodput"]


def test_e11_more_workers_shrink_but_do_not_close_the_gap(experiment_printer):
    trace = build_trace()
    rows = []
    for workers in (2, 4, 8):
        cluster = NginxCluster(workers=workers, isolation=IsolationMode.NONE)
        for client in trace.clients:
            cluster.connect(client)
        benign_ok = benign_total = 0
        for entry in trace:
            response = cluster.handle(entry.client_id, entry.payload)
            cluster.clock.advance(1e-3)
            if not entry.malicious:
                benign_total += 1
                benign_ok += response.startswith(b"HTTP/1.1 200")
        rows.append((workers, f"{benign_ok / benign_total * 100:.1f} %",
                     cluster.metrics.worker_crashes))
    experiment_printer(
        "E11b — scaling out the unisolated cluster (goodput under the same attack)",
        format_table(("workers", "benign goodput", "crashes"), rows),
    )
    # even 8 workers lose benign traffic; SDRaD loses none
    assert all(float(r[1].rstrip(" %")) < 100.0 for r in rows)


@pytest.mark.benchmark(group="e11-cluster")
@pytest.mark.parametrize(
    "isolation", [IsolationMode.PER_CONNECTION, IsolationMode.NONE],
    ids=lambda m: m.value,
)
def test_e11_bench_cluster_replay(benchmark, isolation):
    trace = build_trace()
    benchmark(replay, trace, isolation)
