"""E3 — availability over a simulated year of faults.

Paper claim (§IV): a 2-minute restart "would violate 99.999 % availability
if there were three faults per year, while our in-process rewinding takes
only 3.5 µs, allowing for more than 9·10⁷ recoveries".

Reproduced as: discrete-event simulation of one service-year per (strategy ×
yearly-fault-count) cell, availability computed from the down-interval trace.
Expected shape: process/container restart fall off the five-nines cliff
between 2 and 3 faults/year; rewind holds five nines through millions.
"""

from __future__ import annotations

import pytest

from repro.faultinj.campaign import PeriodicArrivals, PoissonArrivals
from repro.resilience.availability import max_recoveries
from repro.resilience.simulation import ServiceAvailabilitySimulation, compare_strategies
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import YEARS
from repro.sim.cost import GIB
from repro.sim.rng import RngFactory
from repro.sustainability.report import availability_table, format_table

MODEL = RecoveryStrategyModel()
FAULT_COUNTS = [1, 2, 3, 10, 100]


def year_times(count: int) -> list[float]:
    return list(PeriodicArrivals(count).times(YEARS))


def test_e3_availability_grid(experiment_printer):
    blocks = []
    for count in FAULT_COUNTS:
        outcomes = compare_strategies(
            MODEL.all_for(10 * GIB), year_times(count), request_rate=1000.0
        )
        blocks.append(f"--- {count} fault(s)/year ---\n" + availability_table(outcomes))
    experiment_printer(
        "E3 — one simulated service-year per cell (10 GiB dataset, "
        "paper: 3 restarts/yr violate five nines)",
        "\n\n".join(blocks),
    )


def test_e3_five_nines_cliff_between_two_and_three_faults():
    spec = MODEL.process_restart(10 * GIB)
    two = ServiceAvailabilitySimulation(spec, year_times(2)).run()
    three = ServiceAvailabilitySimulation(spec, year_times(3)).run()
    assert two.meets_five_nines
    assert not three.meets_five_nines


def test_e3_rewind_headroom(experiment_printer):
    rows = []
    for target, label in [(0.999, "3 nines"), (0.9999, "4 nines"), (0.99999, "5 nines"), (0.999999, "6 nines")]:
        rewind = max_recoveries(target, 3.5e-6)
        restart = max_recoveries(target, MODEL.process_restart(10 * GIB).downtime_per_fault)
        rows.append((label, f"{restart:.1f}", f"{rewind:.2e}"))
    experiment_printer(
        "E3b — recoverable faults/year within each availability budget "
        "(paper: >9e7 rewinds within five nines)",
        format_table(("target", "restarts/yr", "rewinds/yr"), rows),
    )
    assert max_recoveries(0.99999, 3.5e-6) > 9e7


def test_e3_poisson_faults_same_conclusion():
    """The conclusion is robust to the arrival process, not an artefact of
    evenly spaced faults."""
    rng = RngFactory(5).stream("e3/poisson")
    times = list(PoissonArrivals(6 / YEARS, rng).times(YEARS))
    outcomes = compare_strategies(MODEL.all_for(10 * GIB), times)
    by_name = {o.strategy: o for o in outcomes}
    if len(times) >= 3:
        assert not by_name["process-restart"].meets_five_nines
    assert by_name["sdrad-rewind"].meets_five_nines


def test_e3_dropped_requests_shape():
    """Request-level impact: restart drops ~rate×downtime requests; rewind
    drops ~one per fault."""
    rate = 10000.0
    rewind = ServiceAvailabilitySimulation(
        MODEL.sdrad_rewind(), year_times(3), request_rate=rate
    ).run()
    restart = ServiceAvailabilitySimulation(
        MODEL.process_restart(10 * GIB), year_times(3), request_rate=rate
    ).run()
    assert restart.requests_dropped > 1e6
    assert rewind.requests_dropped < 10


@pytest.mark.benchmark(group="e3-availability")
def test_e3_bench_service_year(benchmark):
    spec = MODEL.process_restart(10 * GIB)
    times = year_times(100)
    benchmark(
        lambda: ServiceAvailabilitySimulation(spec, times, request_rate=1000.0).run()
    )
