"""E8 — recovery-time scaling and SLO crossover map (implied by §IV).

The paper's argument generalises beyond the single 10 GB / 3-faults point:
restart time grows with state size, so the fault rate a restart-based
deployment can sustain shrinks as services get bigger, while rewind's
sustainable rate is effectively unbounded. This experiment maps the
crossover: for each (dataset size × SLO class), the yearly fault count at
which a single-instance restart deployment starts violating the class.

Expected shape: the restart crossover falls with dataset size (hyperbola),
five-nines tolerates only single-digit yearly faults even for small state,
and rewind's crossover is >10⁷ everywhere.
"""

from __future__ import annotations

import pytest

from repro.resilience.slo import SLO_LADDER, crossover_faults
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.cost import GIB
from repro.sustainability.report import format_table

MODEL = RecoveryStrategyModel()
DATASETS = [GIB // 10, GIB, 10 * GIB, 100 * GIB]


def fmt(value: float) -> str:
    if value > 1e6:
        return f"{value:.1e}"
    return f"{value:.1f}"


def test_e8_crossover_map(experiment_printer):
    rows = []
    for dataset in DATASETS:
        restart = MODEL.process_restart(dataset).downtime_per_fault
        row = [f"{dataset / GIB:.1f} GiB"]
        for slo in SLO_LADDER:
            row.append(fmt(crossover_faults(restart, slo)))
        rows.append(tuple(row))
    rewind_row = ["rewind (any size)"] + [
        fmt(crossover_faults(3.5e-6, slo)) for slo in SLO_LADDER
    ]
    rows.append(tuple(rewind_row))
    experiment_printer(
        "E8 — yearly faults tolerable before violating each SLO class "
        "(single instance, process restart vs rewind)",
        format_table(
            ("dataset", *[s.name for s in SLO_LADDER]),
            rows,
        ),
    )


def test_e8_crossover_falls_with_dataset_size():
    crossovers = [
        crossover_faults(MODEL.process_restart(d).downtime_per_fault)
        for d in DATASETS
    ]
    assert all(a > b for a, b in zip(crossovers, crossovers[1:]))


def test_e8_paper_point_on_the_map():
    """The paper's 10 GB / five-nines point: crossover between 2 and 3."""
    restart = MODEL.process_restart(10 * GIB).downtime_per_fault
    crossover = crossover_faults(restart)
    assert 2.0 < crossover < 3.0


def test_e8_rewind_crossover_exceeds_1e6_everywhere():
    # five nines: >9e7; even six nines still tolerates ~9e6 rewinds/year
    for slo in SLO_LADDER:
        assert crossover_faults(3.5e-6, slo) > 1e6


def test_e8_cost_model_sensitivity(experiment_printer):
    """Ablation D4: would the conclusion survive a 10× slower isolation
    implementation? (Yes — rewind has seven orders of headroom.)"""
    rows = []
    for factor in (1, 10, 100, 1000):
        scaled = MODEL.sdrad_rewind().downtime_per_fault * factor
        rows.append(
            (
                f"{factor}x",
                f"{scaled * 1e6:.1f} µs",
                fmt(crossover_faults(scaled)),
            )
        )
    experiment_printer(
        "E8b — sensitivity: five-nines crossover vs rewind-cost scaling",
        format_table(("rewind cost scale", "rewind", "faults/yr tolerable"), rows),
    )
    assert crossover_faults(3.5e-6 * 1000) > 1e4


@pytest.mark.benchmark(group="e8-crossover")
def test_e8_bench_map(benchmark):
    def build_map():
        return [
            crossover_faults(MODEL.process_restart(d).downtime_per_fault, slo)
            for d in DATASETS
            for slo in SLO_LADDER
        ]

    benchmark(build_map)
