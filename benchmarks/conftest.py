"""Shared helpers for the experiment benchmarks.

Every benchmark prints the table/series it reproduces (run with ``-s`` to
see them); ``pytest-benchmark`` additionally times the representative
operation so regressions in the simulator itself are visible.
"""

from __future__ import annotations

import pytest


def print_experiment(title: str, body: str) -> None:
    """Uniform experiment output block (quoted in EXPERIMENTS.md)."""
    bar = "=" * max(len(title), 40)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture
def experiment_printer():
    return print_experiment
