"""E9 (extension) — scaling past MPK's 15-domain limit with key
virtualisation.

The paper inherits MPK's hard limit of 15 concurrently isolated domains and
cites libmpk (ATC'19) as the known way out. This extension experiment
quantifies the trade on our substrate: per-connection isolation for N
concurrent clients, native keys (N ≤ 14 only) vs virtualised keys (any N,
paying retag costs on binding misses).

Expected shape: identical cost while N fits the physical pool (bindings are
all hits); beyond it, round-robin access (the worst case for LRU) pays a
rebind per entry, adding a per-request cost that grows with domain size —
while a skewed access pattern (the realistic one) keeps a high hit rate and
costs almost nothing extra.
"""

from __future__ import annotations

import pytest

from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime
from repro.sim.rng import RngFactory, ZipfSampler
from repro.sustainability.report import format_seconds, format_table

HEAP = 64 * 1024
STACK = 16 * 1024
ROUNDS = 400


def run_round_robin(n_domains: int, virtualized: bool) -> tuple[float, object]:
    runtime = SdradRuntime(key_virtualization=virtualized)
    domains = [
        runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT, heap_size=HEAP, stack_size=STACK
        )
        for _ in range(n_domains)
    ]
    start = runtime.clock.now
    for i in range(ROUNDS):
        domain = domains[i % n_domains]
        runtime.execute(domain.udi, lambda h: None)
    elapsed = runtime.clock.now - start
    return elapsed / ROUNDS, (runtime.keys.stats if runtime.keys else None)


def run_zipf(n_domains: int, skew: float = 0.99) -> tuple[float, object]:
    runtime = SdradRuntime(key_virtualization=True)
    domains = [
        runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT, heap_size=HEAP, stack_size=STACK
        )
        for _ in range(n_domains)
    ]
    sampler = ZipfSampler(n_domains, skew, RngFactory(9).stream("e9"))
    start = runtime.clock.now
    for _ in range(ROUNDS):
        domain = domains[sampler.sample()]
        runtime.execute(domain.udi, lambda h: None)
    return (runtime.clock.now - start) / ROUNDS, runtime.keys.stats


def test_e9_scalability_table(experiment_printer):
    rows = []
    for n in (8, 14, 30, 100):
        virtual_cost, stats = run_round_robin(n, virtualized=True)
        native = (
            format_seconds(run_round_robin(n, virtualized=False)[0])
            if n <= 14
            else "impossible (15-key limit)"
        )
        rows.append(
            (
                n,
                native,
                format_seconds(virtual_cost),
                stats.evictions,
                f"{stats.pages_retagged}",
            )
        )
    experiment_printer(
        "E9 — per-entry cost, native vs virtualised keys, round-robin "
        f"over N domains ({ROUNDS} entries; worst case for LRU)",
        format_table(
            ("domains", "native keys", "virtualised", "evictions", "pages retagged"),
            rows,
        ),
    )


def test_e9_native_equals_virtual_within_pool():
    native, _ = run_round_robin(8, virtualized=False)
    virtual, stats = run_round_robin(8, virtualized=True)
    # after the 8 initial binds every entry is a hit: identical steady cost
    assert stats.evictions == 0
    assert virtual == pytest.approx(native, rel=0.2)


def test_e9_beyond_pool_pays_rebinds():
    within, _ = run_round_robin(14, virtualized=True)
    beyond, stats = run_round_robin(30, virtualized=True)
    assert stats.evictions > 0
    assert beyond > 2 * within


def test_e9_zipf_locality_recovers_performance(experiment_printer):
    robin_cost, robin_stats = run_round_robin(100, virtualized=True)
    zipf_cost, zipf_stats = run_zipf(100)
    experiment_printer(
        "E9b — access-pattern sensitivity at 100 domains",
        format_table(
            ("pattern", "per-entry cost", "hit rate"),
            [
                ("round-robin", format_seconds(robin_cost), f"{robin_stats.hits / ROUNDS:.0%}"),
                ("zipf-0.99", format_seconds(zipf_cost), f"{zipf_stats.hits / ROUNDS:.0%}"),
            ],
        ),
    )
    assert zipf_cost < robin_cost
    assert zipf_stats.hits > robin_stats.hits


def test_e9_isolation_preserved_at_scale():
    runtime = SdradRuntime(key_virtualization=True)
    domains = [
        runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT, heap_size=HEAP, stack_size=STACK
        )
        for _ in range(50)
    ]
    victim = domains[7]
    result = runtime.execute(
        domains[33].udi, lambda h: h.store(victim.heap_base, b"x")
    )
    assert not result.ok and result.fault.mechanism.value == "pkey-violation"


@pytest.mark.benchmark(group="e9-keyvirt")
@pytest.mark.parametrize("n_domains", [8, 100])
def test_e9_bench_virtualized_entries(benchmark, n_domains):
    benchmark(run_round_robin, n_domains, True)
