"""E2 — recovery latency: rewind vs process/container restart vs failover.

Paper claim (§II): "in our Memcached setup with a 10 GB database, a regular
restart takes about 2 minutes, in-process rewinding takes only 3.5 µs."

Reproduced as: a dataset-size sweep (0.1 → 10 GiB) of restart latencies from
the calibrated cost model, against the rewind latency *measured* on the
simulated runtime (an actual fault → rewind cycle on the Memcached replica,
not a constant read back from the model). Expected shape: restart grows
linearly with dataset size, rewind is flat, the gap at 10 GiB exceeds 10⁷×.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime
from repro.sim.cost import GIB
from repro.sustainability.report import format_seconds, format_table

MODEL = RecoveryStrategyModel()
DATASET_SWEEP = [GIB // 10, GIB, 2 * GIB, 5 * GIB, 10 * GIB]

ATTACK = b"get " + b"K" * 270 + b"\r\n"


def measured_rewind_latency() -> float:
    """Drive a real fault through the Memcached replica; time the rewind."""
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
    server.connect("attacker")
    rewinds = []
    runtime.tracer.subscribe(
        lambda e: rewinds.append(e) if e.kind == "domain.rewind" else None
    )
    before_fault = {}

    def mark(e):
        if e.kind == "domain.fault":
            before_fault["t"] = e.timestamp

    runtime.tracer.subscribe(mark)
    server.handle("attacker", ATTACK)
    assert rewinds, "attack did not trigger a rewind"
    return rewinds[0].timestamp - before_fault["t"]


def test_e2_recovery_time_table(experiment_printer):
    rewind = measured_rewind_latency()
    rows = []
    for dataset in DATASET_SWEEP:
        process = MODEL.process_restart(dataset).downtime_per_fault
        container = MODEL.container_restart(dataset).downtime_per_fault
        failover = MODEL.replicated_failover(2).downtime_per_fault
        rows.append(
            (
                f"{dataset / GIB:.1f} GiB",
                format_seconds(rewind),
                format_seconds(process),
                format_seconds(container),
                format_seconds(failover),
                f"{process / rewind:.1e}",
            )
        )
    experiment_printer(
        "E2 — recovery latency by strategy and dataset size "
        "(paper: 2 min restart vs 3.5 µs rewind @ 10 GB)",
        format_table(
            (
                "dataset",
                "sdrad-rewind",
                "process-restart",
                "container-restart",
                "failover-2x",
                "restart/rewind",
            ),
            rows,
        ),
    )


def test_e2_measured_rewind_is_3_5_us():
    assert measured_rewind_latency() == pytest.approx(3.5e-6)


def test_e2_restart_at_10gib_about_two_minutes():
    t = MODEL.process_restart(10 * GIB).downtime_per_fault
    assert 100 < t < 140  # "about 2 minutes"


def test_e2_gap_exceeds_seven_orders():
    rewind = measured_rewind_latency()
    restart = MODEL.process_restart(10 * GIB).downtime_per_fault
    assert restart / rewind > 1e7


def test_e2_restart_scales_linearly_rewind_flat():
    restarts = [MODEL.process_restart(d).downtime_per_fault for d in DATASET_SWEEP]
    diffs = [b - a for a, b in zip(restarts, restarts[1:])]
    sizes = [b - a for a, b in zip(DATASET_SWEEP, DATASET_SWEEP[1:])]
    slopes = [d / s for d, s in zip(diffs, sizes)]
    assert all(s == pytest.approx(slopes[0], rel=1e-6) for s in slopes)


def test_e2_scrub_ablation(experiment_printer):
    """Design decision D2: discard-without-scrub is what keeps rewind in
    microseconds; scrubbing a large domain costs 100× more."""
    rows = []
    for heap_kib in (64, 256, 1024):
        # Eager mode charges the scrub at discard time — that is the cost
        # this ablation exists to expose (lazy, the default, defers it).
        runtime = SdradRuntime(scrub_mode="eager")
        plain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT, heap_size=heap_kib * 1024
        )
        scrubbed = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD,
            heap_size=heap_kib * 1024,
        )

        def fault(handle):
            handle.store(0, b"x")

        plain_result = runtime.execute(plain.udi, fault)
        scrub_result = runtime.execute(scrubbed.udi, fault)
        rows.append(
            (
                f"{heap_kib} KiB",
                format_seconds(plain_result.recovery_time),
                format_seconds(scrub_result.recovery_time),
                f"{scrub_result.recovery_time / plain_result.recovery_time:.0f}x",
            )
        )
    experiment_printer(
        "E2b — ablation: discard vs scrub-on-discard",
        format_table(("domain heap", "discard", "scrub", "ratio"), rows),
    )


def test_e2c_checkpoint_restore_ablation(experiment_printer):
    """Design decision D2/D3: discard vs checkpoint/restore. Restoring a
    snapshot preserves domain state across faults, but a domain-sized copy
    precedes *every* call — the measured numbers show why SDRaD discards."""
    rows = []
    for heap_kib in (64, 256, 1024):
        runtime = SdradRuntime()
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT, heap_size=heap_kib * 1024
        )

        def fault(handle):
            handle.store(0, b"x")

        before = runtime.clock.now
        runtime.execute(domain.udi, lambda h: None)
        plain_call = runtime.clock.now - before
        before = runtime.clock.now
        runtime.execute_with_checkpoint(domain.udi, lambda h: None)
        checkpoint_call = runtime.clock.now - before
        rewind = runtime.execute(domain.udi, fault).recovery_time
        restored = runtime.execute_with_checkpoint(domain.udi, fault).recovery_time
        rows.append(
            (
                f"{heap_kib} KiB",
                format_seconds(plain_call),
                format_seconds(checkpoint_call),
                format_seconds(rewind),
                format_seconds(restored),
            )
        )
    experiment_printer(
        "E2c — ablation: rewind-and-discard vs checkpoint/restore "
        "(per-call overhead and per-fault recovery)",
        format_table(
            (
                "domain heap",
                "call (discard design)",
                "call (checkpointing)",
                "recovery (rewind)",
                "recovery (restore)",
            ),
            rows,
        ),
    )
    # checkpointing's per-call cost dwarfs the discard design's
    assert all(
        _parse_seconds(row[2]) > 10 * _parse_seconds(row[1]) for row in rows
    )


def _parse_seconds(text: str) -> float:
    value, unit = text.split()
    factor = {"ns": 1e-9, "µs": 1e-6, "ms": 1e-3, "s": 1.0, "min": 60.0}[unit]
    return float(value) * factor


@pytest.mark.benchmark(group="e2-recovery")
def test_e2_bench_rewind_cycle(benchmark):
    """Wall-time of a complete simulated fault→detect→rewind cycle."""
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
    server.connect("attacker")
    benchmark(server.handle, "attacker", ATTACK)
