"""E1 — SDRaD runtime overhead on the three use cases.

Paper claim (§II): "it adds negligible overhead (2 %–4 %) in realistic
multi-processing scenarios" on Memcached, NGINX and OpenSSL.

Reproduced as: virtual time to serve a fixed benign request trace with
isolation off vs per-connection vs per-request domains, per use case.
Expected shape: per-connection lands in the 2–4 % band for Memcached,
lower for the heavier NGINX/TLS requests (the switch cost is amortised
over more work per request), and per-request costs more.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.apps.nginx_server import NginxServer
from repro.apps.openssl_service import TlsServer
from repro.apps.tls import make_appdata, make_client_hello
from repro.sdrad.runtime import SdradRuntime
from repro.sustainability.report import format_table

N_REQUESTS = 300
BATCH_SIZE = 16


def _memcached_trace() -> list[bytes]:
    trace = []
    for i in range(N_REQUESTS):
        if i % 10 == 0:
            trace.append(b"set key%03d 0 0 8\r\nvalue%03d\r\n" % (i, i))
        else:
            trace.append(b"get key%03d\r\n" % (i - i % 10))
    return trace


def _nginx_trace() -> list[bytes]:
    return [
        b"GET %s HTTP/1.1\r\nHost: bench\r\n\r\n"
        % (b"/" if i % 3 else b"/static/app.js")
        for i in range(N_REQUESTS)
    ]


def run_memcached(isolation: IsolationMode, batch: int = 1) -> float:
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=isolation)
    server.connect("client")
    trace = _memcached_trace()
    start = runtime.clock.now
    if batch > 1:
        for i in range(0, len(trace), batch):
            server.handle_batch("client", trace[i : i + batch])
    else:
        for raw in trace:
            server.handle("client", raw)
    return runtime.clock.now - start


def run_nginx(isolation: IsolationMode, batch: int = 1) -> float:
    runtime = SdradRuntime()
    server = NginxServer(runtime, isolation=isolation)
    server.connect("client")
    trace = _nginx_trace()
    start = runtime.clock.now
    if batch > 1:
        for i in range(0, len(trace), batch):
            server.handle_batch("client", trace[i : i + batch])
    else:
        for raw in trace:
            server.handle("client", raw)
    return runtime.clock.now - start


def run_tls(isolation: IsolationMode) -> float:
    """Session-oriented TLS workload: handshake + a burst of records each
    (what the SDRaD paper's OpenSSL evaluation measures)."""
    runtime = SdradRuntime()
    server = TlsServer(runtime, isolation=isolation)
    start = runtime.clock.now
    for session_index in range(N_REQUESTS // 20):
        client = f"s{session_index}"
        server.connect(client)
        server.handle_record(client, make_client_hello())
        for _ in range(10):
            server.handle_record(client, make_appdata(b"r" * 1024))
        server.disconnect(client)
    return runtime.clock.now - start


USE_CASES = {
    "memcached": run_memcached,
    "nginx": run_nginx,
    "openssl": run_tls,
}


#: Use cases whose servers support request pipelining (``handle_batch``).
BATCHED_USE_CASES = ("memcached", "nginx")


def overhead_rows() -> list[tuple]:
    rows = []
    for name, runner in USE_CASES.items():
        baseline = runner(IsolationMode.NONE)
        per_connection = runner(IsolationMode.PER_CONNECTION)
        per_request = runner(IsolationMode.PER_REQUEST)
        if name in BATCHED_USE_CASES:
            batched = runner(IsolationMode.PER_CONNECTION, BATCH_SIZE)
            batched_cell = f"{(batched / baseline - 1) * 100:+.2f} %"
        else:
            batched_cell = "—"  # no pipeline in the record protocol
        rows.append(
            (
                name,
                f"{baseline * 1e3:.3f} ms",
                f"{(per_connection / baseline - 1) * 100:+.2f} %",
                batched_cell,
                f"{(per_request / baseline - 1) * 100:+.2f} %",
            )
        )
    return rows


def test_e1_overhead_table(experiment_printer):
    rows = overhead_rows()
    experiment_printer(
        "E1 — runtime overhead vs unisolated baseline "
        f"({N_REQUESTS} requests/use case; paper: 2-4 %)",
        format_table(
            (
                "use case",
                "baseline time",
                "per-connection",
                f"batched({BATCH_SIZE})",
                "per-request",
            ),
            rows,
        ),
    )
    # shape assertions: per-connection Memcached overhead in the paper band
    memcached = dict((r[0], r) for r in rows)["memcached"]
    overhead = float(memcached[2].rstrip(" %"))
    assert 1.0 < overhead < 5.0
    for row in rows:
        # per-request always costs more than per-connection ...
        assert float(row[4].rstrip(" %")) > float(row[2].rstrip(" %"))
        # ... and pipelining amortises the switch below per-connection
        # while staying above the no-isolation baseline.
        if row[3] != "—":
            assert 0.0 < float(row[3].rstrip(" %")) < float(row[2].rstrip(" %"))


def test_e1_overhead_band_memcached():
    baseline = run_memcached(IsolationMode.NONE)
    isolated = run_memcached(IsolationMode.PER_CONNECTION)
    assert 0.01 < isolated / baseline - 1 < 0.05


def test_e1_heavier_requests_amortise_better():
    """TLS/NGINX requests are heavier, so the same switch cost is a smaller
    fraction — the reason the paper's 2-4 % band is an upper envelope."""
    mc = run_memcached(IsolationMode.PER_CONNECTION) / run_memcached(
        IsolationMode.NONE
    )
    ngx = run_nginx(IsolationMode.PER_CONNECTION) / run_nginx(IsolationMode.NONE)
    tls = run_tls(IsolationMode.PER_CONNECTION) / run_tls(IsolationMode.NONE)
    assert ngx - 1 < mc - 1
    assert tls - 1 < mc - 1


@pytest.mark.benchmark(group="e1-overhead")
@pytest.mark.parametrize("isolation", list(IsolationMode), ids=lambda m: m.value)
def test_e1_bench_memcached(benchmark, isolation):
    benchmark(run_memcached, isolation)
