"""E4 — containing malicious clients without disrupting service.

Paper claim (§II): "our approach offers significant advantages with limiting
the impact of malicious clients on other clients in a service-oriented
application, without disrupting service."

Reproduced as: the same byte-identical mixed trace (benign + attacker
clients) replayed against the Memcached replica under each isolation mode,
plus the Heartbleed scenario on the TLS replica. Expected shape: isolated
servers complete the trace with benign goodput ≈ 100 % and all faults
attributed to attackers; the unisolated baseline dies at the first exploit
(and, for TLS, leaks other sessions' secrets before that).
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.apps.openssl_service import TlsServer
from repro.apps.tls import make_client_hello, make_heartbeat_request
from repro.sdrad.policy import ProcessCrashed
from repro.sdrad.runtime import SdradRuntime
from repro.sim.rng import RngFactory
from repro.sustainability.report import format_table
from repro.workloads.clients import build_population
from repro.workloads.traces import WorkloadTrace, generate_trace
from repro.workloads.zipf import Keyspace, KeyValueWorkload

N_REQUESTS = 600


def build_trace(seed: int = 42) -> WorkloadTrace:
    factory = RngFactory(seed)
    keyspace = Keyspace(200)
    clients = build_population(
        6,
        2,
        lambda cid, rng: KeyValueWorkload(keyspace, 0.99, rng),
        factory,
        attack_fraction=0.25,
    )
    return generate_trace(clients, N_REQUESTS, factory)


def replay(trace: WorkloadTrace, isolation: IsolationMode) -> dict:
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=isolation)
    for client in trace.clients:
        server.connect(client)
    benign_ok = benign_total = attacker_errors = 0
    crashed_at = None
    for entry in trace:
        if not entry.malicious:
            benign_total += 1
        try:
            response = server.handle(entry.client_id, entry.payload)
        except ProcessCrashed:
            crashed_at = entry.seq
            break
        if entry.malicious:
            if response.startswith(b"SERVER_ERROR"):
                attacker_errors += 1
        elif not response.startswith(b"SERVER_ERROR"):
            benign_ok += 1
    total_benign_in_trace = sum(1 for e in trace if not e.malicious)
    return {
        "isolation": isolation.value,
        "completed": crashed_at is None,
        "crashed_at": crashed_at,
        "benign_goodput": benign_ok / total_benign_in_trace,
        "rewinds": server.metrics.rewinds,
        "fault_owners": set(server.metrics.per_client_faults),
    }


def test_e4_containment_table(experiment_printer):
    trace = build_trace()
    rows = []
    results = {}
    for isolation in (IsolationMode.PER_CONNECTION, IsolationMode.PER_REQUEST, IsolationMode.NONE):
        result = replay(trace, isolation)
        results[isolation] = result
        rows.append(
            (
                result["isolation"],
                "completed" if result["completed"] else f"CRASHED @ req {result['crashed_at']}",
                f"{result['benign_goodput'] * 100:.1f} %",
                result["rewinds"],
            )
        )
    experiment_printer(
        f"E4 — mixed population, identical {N_REQUESTS}-request trace "
        f"({trace.malicious_count} attack payloads)",
        format_table(
            ("isolation", "outcome", "benign goodput", "rewinds"), rows
        ),
    )
    assert results[IsolationMode.PER_CONNECTION]["completed"]
    assert not results[IsolationMode.NONE]["completed"]


def test_e4_benign_goodput_is_total_when_isolated():
    result = replay(build_trace(), IsolationMode.PER_CONNECTION)
    assert result["benign_goodput"] == 1.0


def test_e4_faults_attributed_only_to_attackers():
    result = replay(build_trace(), IsolationMode.PER_CONNECTION)
    assert result["fault_owners"] <= {"mallory-0", "mallory-1"}
    assert result["fault_owners"]


def test_e4_baseline_loses_benign_traffic():
    isolated = replay(build_trace(), IsolationMode.PER_CONNECTION)
    baseline = replay(build_trace(), IsolationMode.NONE)
    assert baseline["benign_goodput"] < isolated["benign_goodput"]


def heartbleed(isolation: IsolationMode) -> list[str]:
    runtime = SdradRuntime()
    server = TlsServer(runtime, isolation=isolation)
    for client in ("victim-0", "victim-1", "attacker"):
        server.connect(client)
        server.handle_record(client, make_client_hello())
    response = server.handle_record(
        "attacker", make_heartbeat_request(b"x", declared=8000)
    )
    return server.leaked_secrets(response, exclude="attacker")


def test_e4_heartbleed_table(experiment_printer):
    rows = []
    for isolation in (IsolationMode.NONE, IsolationMode.PER_CONNECTION):
        leaked = heartbleed(isolation)
        rows.append(
            (isolation.value, len(leaked), ", ".join(leaked) if leaked else "-")
        )
    experiment_printer(
        "E4b — Heartbleed over-read: other sessions' secrets leaked per mode",
        format_table(("isolation", "victims leaked", "who"), rows),
    )


def test_e4_heartbleed_unisolated_leaks():
    assert heartbleed(IsolationMode.NONE)


def test_e4_heartbleed_isolated_never_leaks():
    assert heartbleed(IsolationMode.PER_CONNECTION) == []


@pytest.mark.benchmark(group="e4-containment")
def test_e4_bench_trace_replay(benchmark):
    trace = build_trace()
    benchmark(replay, trace, IsolationMode.PER_CONNECTION)
