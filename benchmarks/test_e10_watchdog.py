"""E10 (extension) — quarantine closes the fault-spin energy hole.

Rewind makes each fault nearly free, so an attacker can spin the
fault→rewind loop indefinitely, and §IV's energy accounting should charge
that CPU somewhere. This extension shows the watchdog
(:mod:`repro.sdrad.watchdog`) bounding the attacker's cost: after the
threshold, requests are refused at the front door for an escalating
quarantine, so sustained attack CPU drops from O(attack rate) to O(1).

Expected shape: without the watchdog, total rewind time grows linearly with
the number of attack requests; with it, rewinds cap at the threshold per
quarantine period and the virtual time consumed by the attacker flattens.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import MemcachedServer
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.watchdog import FaultWatchdog, WatchdogConfig
from repro.sustainability.report import format_seconds, format_table

ATTACK = b"get " + b"K" * 270 + b"\r\n"


def run_attack(n_attacks: int, with_watchdog: bool) -> dict:
    runtime = SdradRuntime()
    watchdog = None
    if with_watchdog:
        watchdog = FaultWatchdog(
            runtime.clock,
            WatchdogConfig(threshold=5, window=10.0, quarantine_period=120.0),
        )
    server = MemcachedServer(runtime, watchdog=watchdog)
    server.connect("mallory")
    server.connect("alice")
    start = runtime.clock.now
    for _ in range(n_attacks):
        server.handle("mallory", ATTACK)
    attacker_time = runtime.clock.now - start
    # benign client still served afterwards
    assert server.handle("alice", b"set k 0 0 2\r\nhi\r\n") == b"STORED\r\n"
    return {
        "rewinds": server.metrics.rewinds,
        "refusals": server.metrics.quarantine_refusals,
        "attacker_cpu": attacker_time,
    }


def test_e10_attack_cost_table(experiment_printer):
    rows = []
    for n in (10, 100, 1000):
        without = run_attack(n, with_watchdog=False)
        with_wd = run_attack(n, with_watchdog=True)
        rows.append(
            (
                n,
                without["rewinds"],
                format_seconds(without["attacker_cpu"]),
                with_wd["rewinds"],
                with_wd["refusals"],
                format_seconds(with_wd["attacker_cpu"]),
            )
        )
    experiment_printer(
        "E10 — sustained attack cost, with/without quarantine watchdog "
        "(threshold 5 faults / 10 s, 120 s quarantine)",
        format_table(
            (
                "attacks",
                "rewinds (no wd)",
                "cpu (no wd)",
                "rewinds (wd)",
                "refused (wd)",
                "cpu (wd)",
            ),
            rows,
        ),
    )


def test_e10_rewinds_unbounded_without_watchdog():
    result = run_attack(500, with_watchdog=False)
    assert result["rewinds"] == 500


def test_e10_rewinds_capped_with_watchdog():
    result = run_attack(500, with_watchdog=True)
    assert result["rewinds"] == 5
    assert result["refusals"] == 495


def test_e10_attacker_cpu_flattens():
    small = run_attack(50, with_watchdog=True)["attacker_cpu"]
    large = run_attack(5000, with_watchdog=True)["attacker_cpu"]
    # 100× the attacks should cost far less than 100× the CPU
    assert large < 20 * small


def test_e10_without_watchdog_cpu_grows_linearly():
    small = run_attack(50, with_watchdog=False)["attacker_cpu"]
    large = run_attack(500, with_watchdog=False)["attacker_cpu"]
    assert large == pytest.approx(10 * small, rel=0.05)


@pytest.mark.benchmark(group="e10-watchdog")
@pytest.mark.parametrize("with_watchdog", [False, True], ids=["no-wd", "wd"])
def test_e10_bench_attack_burst(benchmark, with_watchdog):
    benchmark(run_attack, 100, with_watchdog)
