"""Adversarial tests for the domain re-entry fast path.

The entry-ticket cache is only sound because four invalidation hooks shoot
stale tickets down: pkey retag (key-virtualisation rebind/evict),
``pkey_free`` (key recycling), domain destroy (udi reuse), and
policy-flag changes. Each hook gets a scenario here that *goes wrong* if
that hook — and only that hook — is deleted: a stale ticket would then
grant a recycled key, target a dead domain, or skip a newly-required exit
check. The batching tests pin the mid-batch fault contract: a fault
rewinds the (side-effect-free) batch and only the offending request
errors.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.errors import DomainStateError
from repro.sdrad.constants import DomainFlags
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import snapshot


def _roundtrip(handle, payload: bytes = b"ok"):
    """Benign body: allocate, store, read back, free."""
    buf = handle.malloc(max(len(payload), 1))
    handle.store(buf, payload)
    out = bytes(handle.load_view(buf, len(payload)))
    handle.free(buf)
    return out


class TestFastPathEquivalence:
    """``reentry_cache=False`` must reproduce the slow path bit for bit."""

    def _run(self, reentry: bool):
        runtime = SdradRuntime(reentry_cache=reentry)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        outputs = []
        for i in range(50):
            payload = b"payload-%d" % i
            outputs.append(runtime.execute(domain.udi, _roundtrip, payload))
        return runtime, [r.value for r in outputs], [r.ok for r in outputs]

    def test_results_and_telemetry_identical(self):
        rt_on, values_on, oks_on = self._run(True)
        rt_off, values_off, oks_off = self._run(False)
        assert values_on == values_off
        assert oks_on == oks_off
        # The counters real hardware would see must not notice the cache.
        assert rt_on.space.pkru.writes == rt_off.space.pkru.writes
        assert rt_on.space.loads == rt_off.space.loads
        assert rt_on.space.stores == rt_off.space.stores
        assert rt_on.clock.now == rt_off.clock.now
        # And the cache actually engaged on the cached run.
        assert rt_on.reentry_hits == 49
        assert rt_on.reentry_misses == 1
        assert rt_off.reentry_hits == 0

    def test_fault_path_identical(self):
        def smash(handle):
            frame = handle.push_frame("victim")
            buf = frame.alloca(32)
            frame.write_buffer(buf, b"A" * 128)

        results = {}
        for reentry in (True, False):
            runtime = SdradRuntime(reentry_cache=reentry)
            domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
            runtime.execute(domain.udi, _roundtrip)  # prime the ticket
            result = runtime.execute(domain.udi, smash)
            results[reentry] = (
                result.ok,
                result.fault.mechanism,
                runtime.space.pkru.writes,
                runtime.clock.now,
                domain.stats.faults,
            )
        assert results[True] == results[False]
        assert results[True][0] is False

    def test_telemetry_exports_cache_counters(self):
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, _roundtrip)
        runtime.execute(domain.udi, _roundtrip)
        memory = snapshot(runtime)["memory"]
        assert memory["reentry_cache_enabled"] is True
        assert memory["reentry_hits"] == 1
        assert memory["reentry_misses"] == 1


class TestRetagInvalidation:
    """Key-virtualisation retag (rebind/evict) must shoot tickets down.

    Without the retag hook, the ticket cached while the domain held its
    old physical key replays a PKRU granting that key — which the evictor
    may have handed to a *different* domain — while the domain's own pages
    now carry a new key. The benign re-entry below would then fault (and
    silently alias another domain's pages into view).
    """

    def test_benign_reentry_after_eviction_churn(self):
        runtime = SdradRuntime(key_virtualization=True)
        domains = [runtime.domain_init() for _ in range(14)]
        for d in domains:  # bind every physical key, cache every ticket
            assert runtime.execute(d.udi, _roundtrip).ok
        victim = domains[0]
        for d in domains[1:]:  # make the victim the LRU binding
            assert runtime.execute(d.udi, _roundtrip).ok
        extra = runtime.domain_init()
        assert runtime.execute(extra.udi, _roundtrip).ok  # evicts the victim
        assert not runtime.keys.is_bound(victim.udi)
        assert runtime.keys.stats.evictions >= 1
        invalidations = runtime.reentry_invalidations
        assert invalidations > 0  # eviction retag already fired the hook
        # Re-entry rebinds the victim (another retag) and must re-derive.
        result = runtime.execute(victim.udi, _roundtrip, b"still-mine")
        assert result.ok
        assert result.value == b"still-mine"
        assert runtime.reentry_invalidations > invalidations


class TestDestroyInvalidation:
    """Destroying a domain must drop its tickets even when no ``pkey_free``
    fires (key virtualisation recycles keys outside the kernel allocator).

    Without the destroy hook, a successor domain reusing the udi would be
    entered through the *predecessor's* ticket: a handle bound to a dead
    domain whose regions are unmapped.
    """

    def test_udi_reuse_with_different_geometry(self):
        runtime = SdradRuntime(key_virtualization=True)
        first = runtime.domain_init(udi=7, heap_size=256 * 1024)
        assert runtime.execute(first.udi, _roundtrip).ok  # ticket cached
        runtime.domain_destroy(7)
        # Different heap size, so the successor's regions do not recycle
        # the predecessor's exact mappings.
        runtime.domain_init(udi=7, heap_size=64 * 1024)
        result = runtime.execute(7, _roundtrip, b"successor")
        assert result.ok
        assert result.value == b"successor"

    def test_udi_reuse_without_keyvirt(self):
        runtime = SdradRuntime()
        first = runtime.domain_init(udi=9, heap_size=256 * 1024)
        assert runtime.execute(first.udi, _roundtrip).ok
        runtime.domain_destroy(9)
        runtime.domain_init(udi=9, heap_size=64 * 1024)
        result = runtime.execute(9, _roundtrip, b"successor")
        assert result.ok
        assert result.value == b"successor"


class TestPkeyFreeInvalidation:
    """Key recycling through the kernel allocator flushes every ticket,
    exactly like the TLB shootdown chained on the same hook."""

    def test_direct_pkey_free_flushes_tickets(self):
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        assert runtime.execute(domain.udi, _roundtrip).ok
        misses = runtime.reentry_misses
        invalidations = runtime.reentry_invalidations
        pkey = runtime.space.pkeys.alloc()
        runtime.space.pkeys.free(pkey)
        assert runtime.reentry_invalidations == invalidations + 1
        # The next entry must re-derive, not replay a flushed ticket.
        assert runtime.execute(domain.udi, _roundtrip).ok
        assert runtime.reentry_misses == misses + 1

    def test_destroying_a_sibling_flushes_tickets(self):
        runtime = SdradRuntime()
        kept = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        doomed = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        assert runtime.execute(kept.udi, _roundtrip).ok
        misses = runtime.reentry_misses
        runtime.domain_destroy(doomed.udi)  # pkey_free -> full flush
        assert runtime.execute(kept.udi, _roundtrip).ok
        assert runtime.reentry_misses == misses + 1


class TestPolicyChangeInvalidation:
    """Tickets cache what an exit must verify; changing the policy must
    invalidate them, or a newly-enabled exit check would be skipped."""

    def test_check_heap_applies_after_flag_change(self):
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        # Ticket cached while CHECK_HEAP_ON_EXIT is off.
        assert runtime.execute(domain.udi, _roundtrip).ok
        invalidations = runtime.reentry_invalidations
        runtime.set_domain_flags(
            domain.udi,
            DomainFlags.RETURN_TO_PARENT | DomainFlags.CHECK_HEAP_ON_EXIT,
        )
        assert runtime.reentry_invalidations == invalidations + 1

        def corrupt(handle):
            # Smash the allocator guard and leave the block allocated, so
            # only the exit-time heap sweep can notice.
            buf = handle.malloc(16)
            capacity = handle.capacity(buf)
            handle.store(buf, b"A" * (capacity + 8))
            return None

        result = runtime.execute(domain.udi, corrupt)
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.HEAP_INTEGRITY

    def test_flag_change_rejected_while_entered(self):
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def reconfigure(handle):
            runtime.set_domain_flags(domain.udi, DomainFlags.DEFAULT)

        with pytest.raises(DomainStateError):
            runtime.execute(domain.udi, reconfigure).unwrap()


class TestBatchFaultContainment:
    """``handle_batch``: a fault mid-batch errors only the offender."""

    def _server(self) -> MemcachedServer:
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c")
        return server

    def test_only_offender_errors(self):
        server = self._server()
        batch = [
            b"set alpha 0 0 5\r\nhello\r\n",
            b"get " + b"K" * 300 + b"\r\n",  # stack smash mid-batch
            b"set beta 0 0 2\r\nhi\r\n",
            b"get alpha\r\n",
        ]
        responses = server.handle_batch("c", batch)
        assert len(responses) == len(batch)
        assert responses[0] == b"STORED\r\n"
        assert responses[1].startswith(b"SERVER_ERROR")
        assert responses[2] == b"STORED\r\n"
        assert responses[3] == b"VALUE alpha 0 5\r\nhello\r\nEND\r\n"
        # The rewound batch applied nothing; the fallback applied each
        # surviving request exactly once.
        assert server.store.get(b"alpha") == (b"hello", 0)
        assert server.store.get(b"beta") == (b"hi", 0)
        assert server.metrics.rewinds == 1
        assert server.metrics.server_errors == 1

    def test_clean_batch_matches_serial_handling(self):
        batched = self._server()
        serial = self._server()
        requests = [
            b"set k%d 0 0 4\r\nv%03d\r\n" % (i, i) for i in range(8)
        ] + [b"get k%d\r\n" % i for i in range(8)]
        batch_responses = batched.handle_batch("c", requests)
        serial_responses = [serial.handle("c", raw) for raw in requests]
        assert batch_responses == serial_responses
        assert batched.metrics.requests == serial.metrics.requests

    def test_multiget_in_batch(self):
        server = self._server()
        server.handle("c", b"set a 0 0 1\r\nx\r\n")
        server.handle("c", b"set b 0 0 1\r\ny\r\n")
        (response,) = server.handle_batch("c", [b"get a b missing\r\n"])
        assert response == (
            b"VALUE a 0 1\r\nx\r\nVALUE b 0 1\r\ny\r\nEND\r\n"
        )


#: Every response the text protocol may legitimately begin with.
_RESPONSE_PREFIXES = (
    b"ERROR",
    b"CLIENT_ERROR",
    b"SERVER_ERROR",
    b"STORED",
    b"NOT_STORED",
    b"NOT_FOUND",
    b"DELETED",
    b"VALUE",
    b"END",
    b"STAT",
    b"-",
    b"0",
    b"1",
    b"2",
    b"3",
    b"4",
    b"5",
    b"6",
    b"7",
    b"8",
    b"9",
)


class TestParserFuzz:
    """Random bytes through the isolated parser: the only acceptable
    outcomes are protocol errors or contained faults — never an uncaught
    exception, never a write that reaches root memory."""

    def test_random_requests_are_contained(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("fuzz")
        server.store.set(b"sentinel", b"untouched", 0)
        rng = random.Random(0xE4)
        prefixes = (b"", b"get ", b"set ", b"delete ", b"incr ", b"stats")
        for _ in range(250):
            raw = (
                rng.choice(prefixes)
                + bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
                + rng.choice((b"", b"\r\n", b"\r\n\r\n"))
            )
            response = server.handle("fuzz", raw)
            assert isinstance(response, bytes) and response
            assert response.startswith(_RESPONSE_PREFIXES), raw
        assert server.store.get(b"sentinel") == (b"untouched", 0)

    def test_random_batches_are_contained(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("fuzz")
        server.store.set(b"sentinel", b"untouched", 0)
        rng = random.Random(0xBA7C4)
        for _ in range(40):
            batch = []
            for _ in range(rng.randrange(1, 6)):
                key = bytes(rng.randrange(33, 127) for _ in range(rng.randrange(1, 300)))
                batch.append(
                    rng.choice((b"get %s\r\n", b"delete %s\r\n")) % key
                )
            responses = server.handle_batch("fuzz", batch)
            assert len(responses) == len(batch)
            for response in responses:
                assert response.startswith(_RESPONSE_PREFIXES)
        assert server.store.get(b"sentinel") == (b"untouched", 0)
