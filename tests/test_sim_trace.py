"""Tests for structured tracing and downtime extraction."""

from __future__ import annotations

import pytest

from repro.sim.trace import Tracer


class TestRecording:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.record(2.0, "b", detail=1)
        assert [e.kind for e in tracer.events] == ["a", "b"]
        assert tracer.events[1].details == {"detail": 1}

    def test_len_and_count(self):
        tracer = Tracer()
        tracer.record(0.0, "x")
        tracer.record(1.0, "x")
        tracer.record(2.0, "y")
        assert len(tracer) == 3
        assert tracer.count("x") == 2

    def test_of_kind_filters(self):
        tracer = Tracer()
        tracer.record(0.0, "a")
        tracer.record(1.0, "b")
        tracer.record(2.0, "a")
        assert [e.timestamp for e in tracer.of_kind("a")] == [0.0, 2.0]

    def test_first_and_last(self):
        tracer = Tracer()
        tracer.record(0.0, "x", n=1)
        tracer.record(5.0, "x", n=2)
        assert tracer.first("x").details["n"] == 1
        assert tracer.last("x").details["n"] == 2
        assert tracer.first("missing") is None
        assert tracer.last("missing") is None

    def test_capacity_limit(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "e")
        assert len(tracer) == 2

    def test_subscriber_sees_all_events(self):
        tracer = Tracer(capacity=1)
        seen = []
        tracer.subscribe(seen.append)
        tracer.record(0.0, "a")
        tracer.record(1.0, "b")
        assert [e.kind for e in seen] == ["a", "b"]


class TestDowntime:
    def test_single_interval(self):
        tracer = Tracer()
        tracer.record(10.0, "service.down")
        tracer.record(15.0, "service.up")
        assert tracer.down_intervals() == [(10.0, 15.0)]
        assert tracer.downtime(horizon=100.0) == pytest.approx(5.0)

    def test_multiple_intervals(self):
        tracer = Tracer()
        for down, up in [(1.0, 2.0), (5.0, 9.0)]:
            tracer.record(down, "service.down")
            tracer.record(up, "service.up")
        assert tracer.downtime(horizon=10.0) == pytest.approx(5.0)

    def test_trailing_down_closed_at_horizon(self):
        tracer = Tracer()
        tracer.record(90.0, "service.down")
        assert tracer.downtime(horizon=100.0) == pytest.approx(10.0)

    def test_trailing_down_dropped_without_horizon(self):
        tracer = Tracer()
        tracer.record(90.0, "service.down")
        assert tracer.down_intervals() == []

    def test_duplicate_down_events_ignored(self):
        tracer = Tracer()
        tracer.record(1.0, "service.down")
        tracer.record(2.0, "service.down")  # nested/duplicate
        tracer.record(3.0, "service.up")
        assert tracer.down_intervals() == [(1.0, 3.0)]

    def test_up_without_down_ignored(self):
        tracer = Tracer()
        tracer.record(1.0, "service.up")
        assert tracer.down_intervals() == []
        assert tracer.downtime(horizon=10.0) == 0.0

    def test_custom_kinds(self):
        tracer = Tracer()
        tracer.record(0.0, "db.offline")
        tracer.record(4.0, "db.online")
        intervals = tracer.down_intervals("db.offline", "db.online")
        assert intervals == [(0.0, 4.0)]

    def test_interval_past_horizon_truncated(self):
        tracer = Tracer()
        tracer.record(95.0, "service.down")
        tracer.record(110.0, "service.up")
        assert tracer.downtime(horizon=100.0) == pytest.approx(5.0)
