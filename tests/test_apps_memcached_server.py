"""Tests for the Memcached server: protocol, attacks, containment."""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.errors import SdradError
from repro.sdrad.policy import ProcessCrashed
from repro.sdrad.runtime import SdradRuntime

ATTACK_LONG_KEY = b"get " + b"K" * 270 + b"\r\n"
ATTACK_LENGTH_LIE = b"set pwn 0 0 4\r\n" + b"Z" * 400 + b"\r\n"


@pytest.fixture
def server(runtime) -> MemcachedServer:
    srv = MemcachedServer(runtime)
    srv.connect("alice")
    return srv


class TestProtocol:
    def test_set_get_roundtrip(self, server: MemcachedServer):
        assert server.handle("alice", b"set foo 7 0 5\r\nhello\r\n") == b"STORED\r\n"
        response = server.handle("alice", b"get foo\r\n")
        assert response == b"VALUE foo 7 5\r\nhello\r\nEND\r\n"

    def test_get_miss(self, server: MemcachedServer):
        assert server.handle("alice", b"get nope\r\n") == b"END\r\n"

    def test_delete(self, server: MemcachedServer):
        server.handle("alice", b"set k 0 0 1\r\nx\r\n")
        assert server.handle("alice", b"delete k\r\n") == b"DELETED\r\n"
        assert server.handle("alice", b"delete k\r\n") == b"NOT_FOUND\r\n"

    def test_stats_command(self, server: MemcachedServer):
        server.handle("alice", b"set k 0 0 1\r\nx\r\n")
        server.handle("alice", b"get k\r\n")
        response = server.handle("alice", b"stats\r\n")
        assert b"STAT cmd_get 1" in response
        assert b"STAT cmd_set 1" in response

    def test_malformed_requests_are_client_errors(self, server: MemcachedServer):
        for bad in (b"bogus\r\n", b"set onlykey\r\n", b"get\r\n", b"no crlf"):
            response = server.handle("alice", bad)
            assert response == b"ERROR\r\n", bad

    def test_bad_numbers_rejected_cleanly(self, server: MemcachedServer):
        assert server.handle("alice", b"set k x 0 5\r\nhello\r\n") == b"ERROR\r\n"
        assert server.handle("alice", b"set k 0 0 -5\r\nhello\r\n") == b"ERROR\r\n"

    def test_binary_value_roundtrip(self, server: MemcachedServer):
        value = bytes(range(256))
        server.handle("alice", b"set bin 0 0 %d\r\n" % len(value) + value + b"\r\n")
        response = server.handle("alice", b"get bin\r\n")
        assert value in response

    def test_unknown_client_rejected(self, server: MemcachedServer):
        with pytest.raises(SdradError):
            server.handle("nobody", b"get k\r\n")

    def test_double_connect_rejected(self, server: MemcachedServer):
        with pytest.raises(SdradError):
            server.connect("alice")


class TestAttackContainment:
    def test_long_key_attack_contained(self, server: MemcachedServer):
        server.connect("mallory")
        response = server.handle("mallory", ATTACK_LONG_KEY)
        assert response.startswith(b"SERVER_ERROR")
        assert server.metrics.rewinds == 1

    def test_length_lie_attack_contained(self, server: MemcachedServer):
        server.connect("mallory")
        response = server.handle("mallory", ATTACK_LENGTH_LIE)
        assert response.startswith(b"SERVER_ERROR")

    def test_store_survives_attack(self, server: MemcachedServer):
        server.connect("mallory")
        server.handle("alice", b"set keep 0 0 4\r\nsafe\r\n")
        server.handle("mallory", ATTACK_LONG_KEY)
        server.handle("mallory", ATTACK_LENGTH_LIE)
        assert server.handle("alice", b"get keep\r\n") == (
            b"VALUE keep 0 4\r\nsafe\r\nEND\r\n"
        )

    def test_attacker_connection_survives(self, server: MemcachedServer):
        server.connect("mallory")
        server.handle("mallory", ATTACK_LONG_KEY)
        # same connection can still issue valid requests (domain was rewound)
        assert server.handle("mallory", b"get keep\r\n") == b"END\r\n"

    def test_faults_attributed_to_attacker(self, server: MemcachedServer):
        server.connect("mallory")
        server.handle("mallory", ATTACK_LONG_KEY)
        server.handle("alice", b"get x\r\n")
        assert server.metrics.per_client_faults == {"mallory": 1}

    def test_key_at_protocol_limit_is_clean(self, server: MemcachedServer):
        # 250 bytes: legal; parser buffer is 256 so no overflow either
        key = b"k" * 250
        assert server.handle("alice", b"set %s 0 0 1\r\nx\r\n" % key) == b"STORED\r\n"

    def test_key_between_limit_and_buffer_is_client_error(self, server):
        # 251..254 bytes: fits the 256-byte buffer (with NUL), over protocol
        # limit — parser survives, trusted side rejects
        key = b"k" * 253
        assert server.handle("alice", b"get %s\r\n" % key) == b"ERROR\r\n"


class TestIsolationModes:
    def test_none_mode_crashes_on_attack(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.NONE)
        server.connect("mallory")
        with pytest.raises(ProcessCrashed):
            server.handle("mallory", ATTACK_LONG_KEY)
        assert server.metrics.crashes == 1

    def test_none_mode_serves_benign_traffic(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.NONE)
        server.connect("alice")
        assert server.handle("alice", b"set k 0 0 2\r\nhi\r\n") == b"STORED\r\n"

    def test_per_request_mode_contains_attack(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_REQUEST)
        server.connect("mallory")
        assert server.handle("mallory", ATTACK_LONG_KEY).startswith(b"SERVER_ERROR")
        assert server.handle("mallory", b"get x\r\n") == b"END\r\n"

    def test_per_request_mode_does_not_leak_domains(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_REQUEST)
        server.connect("c")
        baseline = len(runtime.domains())
        for _ in range(30):
            server.handle("c", b"get x\r\n")
        assert len(runtime.domains()) == baseline

    def test_per_connection_cheaper_than_per_request(self):
        def run(isolation):
            runtime = SdradRuntime()
            server = MemcachedServer(runtime, isolation=isolation)
            server.connect("c")
            start = runtime.clock.now
            for _ in range(20):
                server.handle("c", b"get x\r\n")
            return runtime.clock.now - start

        assert run(IsolationMode.PER_CONNECTION) < run(IsolationMode.PER_REQUEST)

    def test_disconnect_frees_domain(self, runtime):
        server = MemcachedServer(runtime)
        baseline = len(runtime.domains())
        server.connect("c")
        assert len(runtime.domains()) == baseline + 1
        server.disconnect("c")
        assert len(runtime.domains()) == baseline

    def test_sixteen_connections_need_key_recycling(self, runtime):
        """Only 15 pkeys exist: per-connection isolation must reuse them."""
        server = MemcachedServer(runtime)
        for i in range(14):  # conftest domain may exist; stay under limit
            server.connect(f"c{i}")
        for i in range(14):
            server.disconnect(f"c{i}")
        for i in range(14):
            server.connect(f"d{i}")


class TestExtendedCommands:
    def test_add_command(self, server: MemcachedServer):
        assert server.handle("alice", b"add k 0 0 1\r\nx\r\n") == b"STORED\r\n"
        assert server.handle("alice", b"add k 0 0 1\r\ny\r\n") == b"NOT_STORED\r\n"

    def test_replace_command(self, server: MemcachedServer):
        assert server.handle("alice", b"replace k 0 0 1\r\nx\r\n") == b"NOT_STORED\r\n"
        server.handle("alice", b"set k 0 0 1\r\nx\r\n")
        assert server.handle("alice", b"replace k 0 0 1\r\ny\r\n") == b"STORED\r\n"

    def test_incr_decr(self, server: MemcachedServer):
        server.handle("alice", b"set n 0 0 2\r\n10\r\n")
        assert server.handle("alice", b"incr n 5\r\n") == b"15\r\n"
        assert server.handle("alice", b"decr n 20\r\n") == b"0\r\n"

    def test_incr_missing(self, server: MemcachedServer):
        assert server.handle("alice", b"incr nope 1\r\n") == b"NOT_FOUND\r\n"

    def test_incr_malformed(self, server: MemcachedServer):
        assert server.handle("alice", b"incr n abc\r\n") == b"ERROR\r\n"
        assert server.handle("alice", b"incr n -1\r\n") == b"ERROR\r\n"
        assert server.handle("alice", b"incr n\r\n") == b"ERROR\r\n"

    def test_extended_commands_share_the_vulnerable_parser(self, server):
        server.connect("m2")
        response = server.handle("m2", b"incr " + b"K" * 270 + b" 1\r\n")
        assert response.startswith(b"SERVER_ERROR")
        response = server.handle("m2", b"add pwn 0 0 4\r\n" + b"Z" * 400 + b"\r\n")
        assert response.startswith(b"SERVER_ERROR")
