"""Tests for the virtual clock and stopwatch."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import (
    DAYS,
    HOURS,
    MICROSECONDS,
    MINUTES,
    NANOSECONDS,
    YEARS,
    Stopwatch,
    VirtualClock,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(2.5)
        assert clock.now == pytest.approx(3.5)

    def test_advance_returns_new_time(self):
        clock = VirtualClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_advance_zero_is_allowed(self):
        clock = VirtualClock(7.0)
        clock.advance(0.0)
        assert clock.now == 7.0

    def test_advance_rejects_negative_delta(self):
        clock = VirtualClock()
        with pytest.raises(SimulationError):
            clock.advance(-0.001)

    def test_advance_to_jumps_forward(self):
        clock = VirtualClock()
        clock.advance_to(42.0)
        assert clock.now == 42.0

    def test_advance_to_rejects_past(self):
        clock = VirtualClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.999)

    def test_reset(self):
        clock = VirtualClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_rejects_negative(self):
        with pytest.raises(SimulationError):
            VirtualClock().reset(-5)

    def test_nanosecond_resolution_survives(self):
        clock = VirtualClock()
        clock.advance(30 * NANOSECONDS)
        assert clock.now == pytest.approx(3e-8)


class TestTimeConstants:
    def test_unit_ladder(self):
        assert MINUTES == 60
        assert HOURS == 3600
        assert DAYS == 86400
        assert YEARS == 365 * DAYS

    def test_microsecond(self):
        assert 3.5 * MICROSECONDS == pytest.approx(3.5e-6)


class TestStopwatch:
    def test_measures_elapsed_virtual_time(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.advance(1.25)
        assert watch.stop() == pytest.approx(1.25)

    def test_context_manager(self):
        clock = VirtualClock()
        with Stopwatch(clock) as watch:
            clock.advance(2.0)
        assert watch.elapsed == pytest.approx(2.0)

    def test_double_start_rejected(self):
        watch = Stopwatch(VirtualClock())
        watch.start()
        with pytest.raises(SimulationError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(SimulationError):
            Stopwatch(VirtualClock()).stop()

    def test_reusable_after_stop(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.advance(1.0)
        watch.stop()
        watch.start()
        clock.advance(0.5)
        assert watch.stop() == pytest.approx(0.5)
