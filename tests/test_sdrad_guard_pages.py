"""Tests for the guard-pages option (intra-domain adjacency hardening)."""

from __future__ import annotations

import pytest

from repro.sdrad.constants import DomainFlags
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.runtime import SdradRuntime


def heap_end_overflow(runtime: SdradRuntime, domain):
    """Write a run of bytes that starts inside the heap's last page and
    crosses its end."""
    last = domain.heap_base + domain.heap_size - 8

    def overflow(handle):
        handle.store(last, b"X" * 64)

    return runtime.execute(domain.udi, overflow)


class TestGuardPages:
    def test_without_guard_heap_overflow_reaches_own_stack(self):
        runtime = SdradRuntime(guard_pages=False)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        # heap and stack are adjacent and share the pkey: silent success
        result = heap_end_overflow(runtime, domain)
        assert result.ok

    def test_with_guard_heap_overflow_faults(self):
        runtime = SdradRuntime(guard_pages=True)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        result = heap_end_overflow(runtime, domain)
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PAGE_FAULT

    def test_guarded_regions_still_fully_usable(self):
        runtime = SdradRuntime(guard_pages=True)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def fill(handle):
            addr = handle.malloc(1024)
            handle.store(addr, b"y" * 1024)
            return handle.load(addr, 1024)

        assert runtime.execute(domain.udi, fill).value == b"y" * 1024

    def test_guard_pages_isolation_unchanged(self):
        runtime = SdradRuntime(guard_pages=True)
        a = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        b = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        result = runtime.execute(a.udi, lambda h: h.store(b.heap_base, b"x"))
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_region_recycling_with_guards(self):
        runtime = SdradRuntime(guard_pages=True)
        for _ in range(50):
            domain = runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=64 * 1024,
                stack_size=16 * 1024,
            )
            runtime.domain_destroy(domain.udi)

    def test_guard_costs_address_space(self):
        plain = SdradRuntime(guard_pages=False)
        guarded = SdradRuntime(guard_pages=True)
        plain.domain_init()
        guarded.domain_init()
        assert guarded._bump > plain._bump
