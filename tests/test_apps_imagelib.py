"""Tests for the image-decoder FFI use case (§III's real-world scenario)."""

from __future__ import annotations

import pytest

from repro.apps.imagelib import (
    Image,
    ImageService,
    craft_dimension_lie,
    craft_run_overflow,
    decode_image_unsafe,
    encode_image,
    make_test_image,
)
from repro.errors import SdradError
from repro.ffi.sandbox import Sandbox
from repro.sdrad.runtime import SdradRuntime


@pytest.fixture
def service(runtime) -> ImageService:
    return ImageService(Sandbox(runtime))


class TestFormat:
    def test_encode_decode_roundtrip(self, service: ImageService):
        image = make_test_image(8, 8, 3)
        decoded = service.decode(encode_image(image))
        assert decoded == image

    def test_single_channel(self, service: ImageService):
        image = make_test_image(5, 3, 1)
        assert service.decode(encode_image(image)) == image

    def test_rle_compresses_flat_images(self):
        flat = Image(width=16, height=16, channels=3, pixels=b"\xaa" * (16 * 16 * 3))
        encoded = encode_image(flat)
        assert len(encoded) < flat.size_bytes // 4

    def test_image_validates_buffer_length(self):
        with pytest.raises(SdradError):
            Image(width=2, height=2, channels=3, pixels=b"short")

    def test_garbage_rejected_cleanly(self, service: ImageService):
        for garbage in (b"", b"NOPE", b"SIF1", b"SIF1\x00"):
            assert service.decode(garbage) is None
        assert service.rejected == 4
        assert service.contained == 0


class TestExploits:
    def test_dimension_lie_contained(self, service: ImageService):
        honest = encode_image(make_test_image(16, 16, 3))
        # header claims 2x2 but the stream carries 256 pixels: the
        # undersized buffer is overrun during decompression
        attack = craft_dimension_lie(honest, 2, 2)
        result = service.decode(attack)
        assert result is not None
        assert (result.width, result.height) == (1, 1)  # placeholder
        assert service.contained == 1

    def test_run_overflow_contained(self, service: ImageService):
        result = service.decode(craft_run_overflow())
        assert result is not None and result.width == 1
        assert service.contained == 1

    def test_process_survives_attack_volley(self, service: ImageService):
        honest = encode_image(make_test_image(4, 4, 3))
        for _ in range(10):
            service.decode(craft_run_overflow())
            service.decode(craft_dimension_lie(honest, 1, 1))
        # and the decoder still works for honest input afterwards
        assert service.decode(honest) == make_test_image(4, 4, 3)
        assert service.contained == 20

    def test_detection_mechanism_is_heap_integrity(self, service: ImageService):
        service.decode(craft_run_overflow())
        mechanisms = service._decode.stats.mechanisms
        assert set(mechanisms) <= {"heap-integrity", "pkey-violation", "page-fault"}
        assert sum(mechanisms.values()) == 1

    def test_oversized_dimension_header_handled(self, service: ImageService):
        # 4096x4096x3 = 48 MiB buffer > 4 MiB sandbox heap: allocation
        # failure inside the domain, also contained
        honest = encode_image(make_test_image(2, 2, 3))
        attack = craft_dimension_lie(honest, 4096, 4096)
        result = service.decode(attack)
        assert result is not None and result.width == 1
        assert service.contained == 1


class TestUnsafeDecoderDirect:
    """The decoder run without a sandbox crashes the process — the §III
    motivation stated as a test."""

    def test_unprotected_decode_is_fatal(self):
        from repro.sdrad.policy import ProcessCrashed

        runtime = SdradRuntime()
        with pytest.raises(ProcessCrashed):
            runtime.execute_unisolated(decode_image_unsafe, craft_run_overflow())

    def test_honest_input_fine_without_sandbox(self):
        runtime = SdradRuntime()
        honest = encode_image(make_test_image(4, 4, 3))
        result = runtime.execute_unisolated(decode_image_unsafe, honest)
        assert result["width"] == 4
