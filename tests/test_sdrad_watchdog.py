"""Tests for the fault watchdog and its server integration."""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import MemcachedServer
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.watchdog import FaultWatchdog, WatchdogConfig
from repro.sim.clock import VirtualClock

ATTACK = b"get " + b"K" * 270 + b"\r\n"


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


class TestWatchdogCore:
    def test_below_threshold_no_quarantine(self, clock):
        watchdog = FaultWatchdog(clock, WatchdogConfig(threshold=3, window=1.0))
        assert not watchdog.record_fault("c")
        assert not watchdog.record_fault("c")
        assert not watchdog.is_quarantined("c")

    def test_threshold_trips_quarantine(self, clock):
        watchdog = FaultWatchdog(clock, WatchdogConfig(threshold=3, window=1.0))
        watchdog.record_fault("c")
        watchdog.record_fault("c")
        assert watchdog.record_fault("c")
        assert watchdog.is_quarantined("c")
        assert watchdog.total_quarantines == 1

    def test_window_slides(self, clock):
        watchdog = FaultWatchdog(clock, WatchdogConfig(threshold=3, window=1.0))
        watchdog.record_fault("c")
        clock.advance(2.0)  # first fault falls out of the window
        watchdog.record_fault("c")
        assert not watchdog.record_fault("c")
        assert not watchdog.is_quarantined("c")

    def test_quarantine_expires(self, clock):
        config = WatchdogConfig(threshold=1, window=1.0, quarantine_period=10.0)
        watchdog = FaultWatchdog(clock, config)
        watchdog.record_fault("c")
        assert watchdog.is_quarantined("c")
        clock.advance(10.001)
        assert not watchdog.is_quarantined("c")

    def test_escalation_doubles(self, clock):
        config = WatchdogConfig(threshold=1, window=1.0, quarantine_period=10.0)
        watchdog = FaultWatchdog(clock, config)
        watchdog.record_fault("c")
        assert watchdog.quarantine_remaining("c") == pytest.approx(10.0)
        clock.advance(11.0)
        watchdog.record_fault("c")
        assert watchdog.quarantine_remaining("c") == pytest.approx(20.0)
        clock.advance(21.0)
        watchdog.record_fault("c")
        assert watchdog.quarantine_remaining("c") == pytest.approx(40.0)

    def test_escalation_capped(self, clock):
        config = WatchdogConfig(
            threshold=1, window=1.0, quarantine_period=10.0, max_quarantine=25.0
        )
        watchdog = FaultWatchdog(clock, config)
        for _ in range(5):
            watchdog.record_fault("c")
            clock.advance(watchdog.quarantine_remaining("c") + 0.1)
        watchdog.record_fault("c")
        assert watchdog.quarantine_remaining("c") <= 25.0

    def test_principals_independent(self, clock):
        watchdog = FaultWatchdog(clock, WatchdogConfig(threshold=2, window=1.0))
        watchdog.record_fault("a")
        watchdog.record_fault("b")
        assert not watchdog.is_quarantined("a")
        assert not watchdog.is_quarantined("b")
        watchdog.record_fault("a")
        assert watchdog.is_quarantined("a")
        assert not watchdog.is_quarantined("b")

    def test_pardon(self, clock):
        watchdog = FaultWatchdog(clock, WatchdogConfig(threshold=1, window=1.0))
        watchdog.record_fault("c")
        watchdog.pardon("c")
        assert not watchdog.is_quarantined("c")

    def test_quarantined_principals_listing(self, clock):
        watchdog = FaultWatchdog(clock, WatchdogConfig(threshold=1, window=1.0))
        watchdog.record_fault("x")
        assert watchdog.quarantined_principals() == ["x"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(threshold=0)
        with pytest.raises(ValueError):
            WatchdogConfig(window=0)
        with pytest.raises(ValueError):
            WatchdogConfig(quarantine_period=0)
        with pytest.raises(ValueError):
            WatchdogConfig(quarantine_period=10, max_quarantine=5)


class TestServerIntegration:
    def make_server(self, threshold: int = 3) -> MemcachedServer:
        runtime = SdradRuntime()
        watchdog = FaultWatchdog(
            runtime.clock,
            WatchdogConfig(threshold=threshold, window=10.0, quarantine_period=60.0),
        )
        server = MemcachedServer(runtime, watchdog=watchdog)
        server.connect("mallory")
        server.connect("alice")
        return server

    def test_attacker_gets_quarantined(self):
        server = self.make_server(threshold=3)
        for _ in range(3):
            server.handle("mallory", ATTACK)
        assert server.metrics.quarantines == 1
        response = server.handle("mallory", b"get x\r\n")
        assert response == b"SERVER_ERROR client quarantined\r\n"
        assert server.metrics.quarantine_refusals == 1

    def test_quarantined_requests_cost_nothing(self):
        server = self.make_server(threshold=1)
        server.handle("mallory", ATTACK)
        before = server.runtime.clock.now
        server.handle("mallory", ATTACK)
        # refused at the front door: no parse, no domain switch, no rewind
        assert server.runtime.clock.now == before

    def test_benign_client_unaffected_by_quarantine(self):
        server = self.make_server(threshold=1)
        server.handle("mallory", ATTACK)
        assert server.handle("alice", b"set k 0 0 2\r\nhi\r\n") == b"STORED\r\n"

    def test_quarantine_stops_rewind_burn(self):
        """The energy argument: with the watchdog, a fault-spinning attacker
        stops costing rewinds after the threshold."""
        server = self.make_server(threshold=3)
        for _ in range(20):
            server.handle("mallory", ATTACK)
        assert server.metrics.rewinds == 3  # then the door closed
        assert server.metrics.quarantine_refusals == 17

    def test_no_watchdog_means_unbounded_rewinds(self):
        runtime = SdradRuntime()
        server = MemcachedServer(runtime)
        server.connect("mallory")
        for _ in range(20):
            server.handle("mallory", ATTACK)
        assert server.metrics.rewinds == 20
