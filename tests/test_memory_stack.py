"""Tests for canaried call stacks."""

from __future__ import annotations

import random

import pytest

from repro.errors import SdradError, StackCanaryViolation
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE
from repro.memory.stack import CallStack

STACK_SIZE = 4 * PAGE_SIZE


@pytest.fixture
def space() -> AddressSpace:
    s = AddressSpace(size=16 * PAGE_SIZE)
    s.page_table.map_range(0, 16 * PAGE_SIZE, pkey=0)
    return s


@pytest.fixture
def stack(space: AddressSpace) -> CallStack:
    return CallStack(space, 0, STACK_SIZE, rng=random.Random(1))


class TestFrames:
    def test_push_pop_clean(self, stack: CallStack):
        frame = stack.push_frame("fn", return_address=0x1234)
        assert stack.pop_frame(frame) == 0x1234
        assert stack.depth == 0

    def test_nested_frames(self, stack: CallStack):
        outer = stack.push_frame("outer")
        inner = stack.push_frame("inner")
        assert stack.depth == 2
        stack.pop_frame(inner)
        stack.pop_frame(outer)
        assert stack.depth == 0

    def test_out_of_order_pop_rejected(self, stack: CallStack):
        outer = stack.push_frame("outer")
        stack.push_frame("inner")
        with pytest.raises(SdradError):
            stack.pop_frame(outer)

    def test_frames_grow_downward(self, stack: CallStack):
        outer = stack.push_frame("outer")
        inner = stack.push_frame("inner")
        assert inner.canary_slot < outer.canary_slot

    def test_stack_overflow_detected_on_push(self, space):
        tiny = CallStack(space, 0, 64, rng=random.Random(2))
        frames = []
        with pytest.raises(SdradError, match="stack overflow"):
            for i in range(100):
                frames.append(tiny.push_frame(f"f{i}"))


class TestLocals:
    def test_alloca_within_frame(self, stack: CallStack):
        frame = stack.push_frame("fn")
        buf = frame.alloca(64)
        frame.write_buffer(buf, b"x" * 64)
        assert frame.read_buffer(buf, 64) == b"x" * 64
        stack.pop_frame(frame)

    def test_locals_stack_downward(self, stack: CallStack):
        frame = stack.push_frame("fn")
        a = frame.alloca(16)
        b = frame.alloca(16)
        assert b < a
        assert a + 16 <= frame.canary_slot

    def test_alloca_aligned(self, stack: CallStack):
        frame = stack.push_frame("fn")
        addr = frame.alloca(5)
        assert addr % 8 == 0

    def test_alloca_rejects_nonpositive(self, stack: CallStack):
        frame = stack.push_frame("fn")
        with pytest.raises(SdradError):
            frame.alloca(0)

    def test_alloca_on_popped_frame_rejected(self, stack: CallStack):
        frame = stack.push_frame("fn")
        stack.pop_frame(frame)
        with pytest.raises(SdradError):
            frame.alloca(8)

    def test_alloca_exhausting_stack_rejected(self, stack: CallStack):
        frame = stack.push_frame("fn")
        with pytest.raises(SdradError, match="stack overflow"):
            frame.alloca(STACK_SIZE + 64)


class TestCanaries:
    def test_overflow_into_canary_detected_on_pop(self, stack: CallStack):
        frame = stack.push_frame("vuln")
        buf = frame.alloca(16)
        frame.write_buffer(buf, b"A" * 24)  # 8 bytes past the buffer
        with pytest.raises(StackCanaryViolation) as excinfo:
            stack.pop_frame(frame)
        assert excinfo.value.frame == "vuln"

    def test_exact_fill_does_not_trip(self, stack: CallStack):
        frame = stack.push_frame("fn")
        buf = frame.alloca(16)
        frame.write_buffer(buf, b"A" * 16)
        stack.pop_frame(frame)

    def test_overflow_across_intermediate_local(self, stack: CallStack):
        frame = stack.push_frame("fn")
        frame.alloca(16)  # upper local, sits between buf and canary
        buf = frame.alloca(16)
        frame.write_buffer(buf, b"B" * 40)  # crosses both locals + canary
        with pytest.raises(StackCanaryViolation):
            stack.pop_frame(frame)

    def test_check_canaries_without_unwinding(self, stack: CallStack):
        frame = stack.push_frame("fn")
        buf = frame.alloca(16)
        stack.check_canaries()  # clean
        frame.write_buffer(buf, b"C" * 24)
        with pytest.raises(StackCanaryViolation):
            stack.check_canaries()

    def test_canary_has_nul_byte(self, stack: CallStack):
        frame = stack.push_frame("fn")
        canary = stack.space.raw_load(frame.canary_slot, 8)
        assert canary[0] == 0  # little-endian: low byte is the NUL

    def test_canaries_differ_between_frames(self, stack: CallStack):
        a = stack.push_frame("a")
        b = stack.push_frame("b")
        ca = stack.space.raw_load(a.canary_slot, 8)
        cb = stack.space.raw_load(b.canary_slot, 8)
        assert ca != cb

    def test_unwind_all_skips_canary_checks(self, stack: CallStack):
        frame = stack.push_frame("fn")
        buf = frame.alloca(16)
        frame.write_buffer(buf, b"D" * 24)  # smashed
        stack.unwind_all()  # rewind path: no exception
        assert stack.depth == 0

    def test_inner_smash_does_not_trip_outer(self, stack: CallStack):
        outer = stack.push_frame("outer")
        inner = stack.push_frame("inner")
        buf = inner.alloca(16)
        inner.write_buffer(buf, b"E" * 24)
        with pytest.raises(StackCanaryViolation):
            stack.pop_frame(inner)
        stack.pop_frame(outer)  # outer canary intact


class TestConstruction:
    def test_too_small_rejected(self, space):
        with pytest.raises(SdradError):
            CallStack(space, 0, 16)

    def test_used_bytes(self, stack: CallStack):
        assert stack.used_bytes == 0
        frame = stack.push_frame("fn")
        frame.alloca(64)
        assert stack.used_bytes >= 64 + 16
