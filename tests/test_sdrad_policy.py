"""Tests for recovery policies."""

from __future__ import annotations

import pytest

from repro.errors import SegmentationFault
from repro.sdrad.detect import classify
from repro.sdrad.policy import (
    AbortPolicy,
    ProcessCrashed,
    RetryPolicy,
    RewindPolicy,
    default_policy,
)


@pytest.fixture
def report():
    return classify(SegmentationFault(0x10), domain_udi=1)


class TestRewindPolicy:
    def test_always_rewinds(self, report):
        decision = RewindPolicy().decide(report, attempt=1)
        assert decision.rewind and not decision.retry and not decision.abort

    def test_is_default(self):
        assert isinstance(default_policy(), RewindPolicy)


class TestAbortPolicy:
    def test_always_aborts(self, report):
        decision = AbortPolicy().decide(report, attempt=1)
        assert decision.abort and not decision.rewind


class TestRetryPolicy:
    def test_retries_within_budget(self, report):
        policy = RetryPolicy(max_retries=2)
        assert policy.decide(report, attempt=1).retry
        assert policy.decide(report, attempt=2).retry
        assert not policy.decide(report, attempt=3).retry

    def test_zero_retries_behaves_like_rewind(self, report):
        policy = RetryPolicy(max_retries=0)
        decision = policy.decide(report, attempt=1)
        assert decision.rewind and not decision.retry and not decision.abort

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_always_rewinds_never_aborts(self, report):
        policy = RetryPolicy(max_retries=1)
        for attempt in range(1, 5):
            decision = policy.decide(report, attempt)
            assert decision.rewind and not decision.abort


class TestProcessCrashed:
    def test_carries_report(self, report):
        crash = ProcessCrashed(report)
        assert crash.report is report
        assert "page-fault" in str(crash)
