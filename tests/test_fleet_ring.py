"""Consistent-hash ring invariants: determinism, minimal movement, balance."""

from __future__ import annotations

import pytest

from repro.errors import SdradError
from repro.fleet.ring import DEFAULT_VNODES, HashRing

PROBE_KEYS = [b"user:%07d" % i for i in range(5_000)]


def ring_with(names, vnodes=DEFAULT_VNODES, seed=0):
    ring = HashRing(vnodes=vnodes, seed=seed)
    for name in names:
        ring.add_shard(name)
    return ring


class TestDeterminism:
    def test_same_seed_same_placement(self):
        a = ring_with(["s0", "s1", "s2", "s3"], seed=42)
        b = ring_with(["s0", "s1", "s2", "s3"], seed=42)
        assert a.assignment(PROBE_KEYS) == b.assignment(PROBE_KEYS)

    def test_placement_independent_of_add_order(self):
        a = ring_with(["s0", "s1", "s2", "s3"])
        b = ring_with(["s3", "s1", "s0", "s2"])
        assert a.assignment(PROBE_KEYS) == b.assignment(PROBE_KEYS)

    def test_different_seed_different_placement(self):
        a = ring_with(["s0", "s1", "s2", "s3"], seed=0)
        b = ring_with(["s0", "s1", "s2", "s3"], seed=1)
        assert a.assignment(PROBE_KEYS) != b.assignment(PROBE_KEYS)

    def test_placement_is_process_stable(self):
        # Pin a handful of assignments to literal values: placement may
        # never depend on Python's salted hash() or dict order, so these
        # must hold in every process, forever (or the ring broke compat).
        ring = ring_with(["s0", "s1", "s2", "s3"], seed=0)
        sample = {key: ring.shard_for(key) for key in PROBE_KEYS[:5]}
        assert sample == {
            b"user:0000000": "s2",
            b"user:0000001": "s2",
            b"user:0000002": "s0",
            b"user:0000003": "s1",
            b"user:0000004": "s2",
        }


class TestMinimalMovement:
    def test_remove_moves_only_removed_shards_keys(self):
        ring = ring_with(["s0", "s1", "s2", "s3"])
        before = ring.assignment(PROBE_KEYS)
        ring.remove_shard("s2")
        after = ring.assignment(PROBE_KEYS)
        for key in PROBE_KEYS:
            if before[key] != "s2":
                assert after[key] == before[key]
            else:
                assert after[key] != "s2"

    def test_rejoin_restores_exact_placement(self):
        ring = ring_with(["s0", "s1", "s2", "s3"])
        before = ring.assignment(PROBE_KEYS)
        ring.remove_shard("s2")
        ring.add_shard("s2")
        assert ring.assignment(PROBE_KEYS) == before

    def test_add_steals_only_from_survivors_proportionally(self):
        ring = ring_with(["s0", "s1", "s2"])
        before = ring.assignment(PROBE_KEYS)
        ring.add_shard("s3")
        after = ring.assignment(PROBE_KEYS)
        moved = [key for key in PROBE_KEYS if before[key] != after[key]]
        # Every moved key moved TO the new shard, never between survivors.
        assert moved
        assert all(after[key] == "s3" for key in moved)


class TestBalance:
    def test_shares_are_roughly_fair(self):
        names = [f"s{i}" for i in range(8)]
        ring = ring_with(names)
        shares = [ring.share_of(name, PROBE_KEYS) for name in names]
        assert sum(shares) == pytest.approx(1.0)
        # 64 vnodes bounds the spread; generous envelope to stay seed-robust.
        assert max(shares) < 2.5 * (1 / 8)
        assert min(shares) > 0.25 * (1 / 8)

    def test_plan_groups_and_preserves_order(self):
        ring = ring_with(["s0", "s1", "s2", "s3"])
        keys = PROBE_KEYS[:64]
        plan = ring.plan(keys)
        # Every key appears exactly once, on its owning shard, and each
        # shard's sub-list preserves the original request order.
        flattened = [key for sub in plan.values() for key in sub]
        assert sorted(flattened) == sorted(keys)
        for name, sub in plan.items():
            assert all(ring.shard_for(key) == name for key in sub)
            positions = [keys.index(key) for key in sub]
            assert positions == sorted(positions)

    def test_plan_keeps_duplicates(self):
        ring = ring_with(["s0", "s1"])
        plan = ring.plan([b"dup", b"dup", b"other"])
        owner = ring.shard_for(b"dup")
        assert plan[owner].count(b"dup") == 2


class TestValidation:
    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(SdradError):
            HashRing().shard_for(b"key")

    def test_duplicate_shard_refused(self):
        ring = ring_with(["s0"])
        with pytest.raises(SdradError):
            ring.add_shard("s0")

    def test_remove_unknown_refused(self):
        with pytest.raises(SdradError):
            HashRing().remove_shard("ghost")

    def test_bad_config_refused(self):
        with pytest.raises(SdradError):
            HashRing(vnodes=0)
        with pytest.raises(SdradError):
            HashRing(seed=-1)

    def test_contains_and_len(self):
        ring = ring_with(["s0", "s1"])
        assert "s0" in ring and "ghost" not in ring
        assert len(ring) == 2
        assert ring.shards == ["s0", "s1"]
