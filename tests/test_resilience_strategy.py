"""Tests for recovery-strategy specs and the SLO ladder."""

from __future__ import annotations

import math

import pytest

from repro.resilience.slo import (
    FIVE_NINES,
    SLO_LADDER,
    classify,
    crossover_faults,
)
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import MINUTES
from repro.sim.cost import GIB


@pytest.fixture
def model() -> RecoveryStrategyModel:
    return RecoveryStrategyModel()


class TestStrategySpecs:
    def test_rewind_spec(self, model):
        spec = model.sdrad_rewind()
        assert spec.downtime_per_fault == pytest.approx(3.5e-6)
        assert spec.replicas == 1
        assert spec.requests_lost_per_fault == 1
        assert 0.02 <= spec.runtime_overhead <= 0.04

    def test_restart_spec_scales_with_data(self, model):
        small = model.process_restart(1 * GIB)
        large = model.process_restart(10 * GIB)
        assert large.downtime_per_fault > small.downtime_per_fault
        assert large.downtime_per_fault == pytest.approx(2 * MINUTES, rel=0.25)

    def test_container_slower_than_process(self, model):
        assert (
            model.container_restart(GIB).downtime_per_fault
            > model.process_restart(GIB).downtime_per_fault
        )

    def test_failover_needs_two_replicas(self, model):
        with pytest.raises(ValueError):
            model.replicated_failover(1)
        spec = model.replicated_failover(3)
        assert spec.replicas == 3
        assert spec.name == "replicated-3x"

    def test_recoveries_per_budget(self, model):
        spec = model.sdrad_rewind()
        assert spec.recoveries_per_budget(315.36) == pytest.approx(9.01e7, rel=0.01)

    def test_all_for_returns_comparison_set(self, model):
        specs = model.all_for(10 * GIB)
        names = [s.name for s in specs]
        assert names == [
            "sdrad-rewind",
            "process-restart",
            "container-restart",
            "replicated-2x",
        ]


class TestSloLadder:
    def test_ladder_is_increasing(self):
        availabilities = [s.availability for s in SLO_LADDER]
        assert availabilities == sorted(availabilities)

    def test_five_nines_budget(self):
        assert FIVE_NINES.yearly_budget == pytest.approx(315.36, abs=0.01)

    def test_classify_picks_best_class(self):
        assert classify(0.9999965).name == "five-nines"
        assert classify(0.995).name == "two-nines"
        assert classify(0.5) is None
        assert classify(0.9999995).name == "six-nines"

    def test_sustainable_faults_per_year(self):
        # five nines at 2-minute recovery: ~2.6 faults/year — the paper's
        # "three faults per year" is just past the cliff
        faults = FIVE_NINES.sustainable_faults_per_year(2 * MINUTES)
        assert 2.0 < faults < 3.0

    def test_rewind_sustains_enormous_rates(self):
        rate = FIVE_NINES.sustainable_fault_rate(3.5e-6)
        assert rate * 3600 > 10000  # >10k faults/hour, forever


class TestCrossover:
    def test_crossover_for_restart(self):
        faults = crossover_faults(2 * MINUTES)
        assert faults == pytest.approx(2.628, abs=0.01)

    def test_crossover_infinite_for_zero_recovery(self):
        assert math.isinf(crossover_faults(0.0))

    def test_crossover_scales_with_slo(self):
        two_nines = SLO_LADDER[0]
        assert crossover_faults(2 * MINUTES, two_nines) > crossover_faults(
            2 * MINUTES, FIVE_NINES
        )
