"""Tests for the report formatting helpers."""

from __future__ import annotations

import pytest

from repro.faultinj.campaign import PeriodicArrivals
from repro.resilience.simulation import compare_strategies
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import YEARS
from repro.sim.cost import GIB
from repro.sustainability.lca import LifecycleAssessment
from repro.sustainability.report import (
    availability_table,
    format_availability,
    format_seconds,
    format_table,
    lca_table,
)


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0.0, "0 s"),
            (3e-8, "30.0 ns"),
            (3.5e-6, "3.5 µs"),
            (0.002, "2.0 ms"),
            (1.5, "1.5 s"),
            (119.0, "119.0 s"),
            (300.0, "5.0 min"),
            (7200.0, "2.0 h"),
        ],
    )
    def test_scales(self, value, expected):
        assert format_seconds(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)


class TestFormatAvailability:
    def test_shows_enough_digits_for_five_nines(self):
        assert format_availability(0.99999) == "99.999000 %"
        assert format_availability(1.0) == "100.000000 %"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "long-header"), [("x", 1), ("yyyy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        assert "long-header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_handles_empty_rows(self):
        text = format_table(("only", "headers"), [])
        assert "only" in text

    def test_columns_line_up(self):
        text = format_table(("col1", "col2"), [("a", "b"), ("ccc", "d")])
        lines = text.splitlines()
        # 'col2' and 'b'/'d' start at the same offset
        offset = lines[0].index("col2")
        assert lines[2][offset] == "b"
        assert lines[3][offset] == "d"


class TestDomainTables:
    def test_availability_table_renders(self):
        model = RecoveryStrategyModel()
        times = list(PeriodicArrivals(3).times(YEARS))
        outcomes = compare_strategies(model.all_for(10 * GIB), times)
        text = availability_table(outcomes)
        assert "sdrad-rewind" in text
        assert "NO" in text  # the violating restart rows
        assert "yes" in text

    def test_lca_table_renders(self):
        rows = LifecycleAssessment().assess(10 * GIB, 3)
        text = lca_table(rows)
        assert "kWh/yr" in text
        assert "sdrad-rewind" in text
        assert "total-kgCO2e" in text
