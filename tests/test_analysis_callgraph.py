"""Unit tests for the whole-program layer: call graph, SCCs, summaries.

These exercise the machinery directly (not through fixtures): name
resolution policy, Tarjan ordering, fixpoint termination on recursion
and mutual recursion, and the unknown-call conservatism that keeps the
analysis sound when resolution fails.
"""

from __future__ import annotations

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.model import ModuleModel
from repro.analysis.runner import analyze_sources
from repro.analysis.summaries import compute_summaries, extract_file_facts


def _facts(sources: dict) -> dict:
    return {
        path: extract_file_facts(ModuleModel.parse(path, src))
        for path, src in sources.items()
    }


def _graph(sources: dict) -> CallGraph:
    return CallGraph(_facts(sources))


class TestNameResolution:
    def test_same_module_beats_global(self):
        graph = _graph(
            {
                "a.py": "def helper():\n    pass\n",
                "b.py": "def helper():\n    pass\ndef caller():\n    helper()\n",
            }
        )
        assert graph.resolve("b.py", "helper") == "b.py::helper"
        assert graph.edges["b.py::caller"] == ("b.py::helper",)

    def test_last_definition_wins_within_module(self):
        graph = _graph(
            {
                "a.py": (
                    "def helper():\n    pass\n"
                    "def helper():\n    return 1\n"
                )
            }
        )
        # Both definitions share a qualname; the index points at one key.
        assert graph.resolve("a.py", "helper") == "a.py::helper"

    def test_globally_unique_resolves_across_modules(self):
        graph = _graph(
            {
                "a.py": "def unique_helper():\n    pass\n",
                "b.py": "def caller():\n    unique_helper()\n",
            }
        )
        assert graph.resolve("b.py", "unique_helper") == "a.py::unique_helper"
        assert graph.edges["b.py::caller"] == ("a.py::unique_helper",)

    def test_ambiguous_global_is_unresolved(self):
        graph = _graph(
            {
                "a.py": "def dup():\n    pass\n",
                "b.py": "def dup():\n    pass\n",
                "c.py": "def caller():\n    dup()\n",
            }
        )
        assert graph.resolve("c.py", "dup") is None
        assert graph.edges["c.py::caller"] == ()

    def test_undefined_name_is_unresolved(self):
        graph = _graph({"a.py": "def caller():\n    mystery()\n"})
        assert graph.resolve("a.py", "mystery") is None


class TestSccs:
    def test_chain_emits_callees_before_callers(self):
        graph = _graph(
            {
                "a.py": (
                    "def c():\n    pass\n"
                    "def b():\n    c()\n"
                    "def a():\n    b()\n"
                )
            }
        )
        order = [scc for scc in graph.sccs()]
        assert ["a.py::c"] in order and ["a.py::a"] in order
        assert order.index(["a.py::c"]) < order.index(["a.py::b"])
        assert order.index(["a.py::b"]) < order.index(["a.py::a"])

    def test_self_recursion_is_a_singleton_scc_with_self_edge(self):
        graph = _graph({"a.py": "def f(n):\n    return f(n - 1)\n"})
        assert graph.edges["a.py::f"] == ("a.py::f",)
        assert ["a.py::f"] in list(graph.sccs())

    def test_mutual_recursion_shares_an_scc(self):
        graph = _graph(
            {
                "a.py": (
                    "def even(n):\n    return odd(n - 1)\n"
                    "def odd(n):\n    return even(n - 1)\n"
                    "def caller():\n    return even(4)\n"
                )
            }
        )
        sccs = list(graph.sccs())
        cycle = [s for s in sccs if len(s) > 1]
        assert cycle == [["a.py::even", "a.py::odd"]]
        # The cycle is emitted before the function that calls into it.
        assert sccs.index(cycle[0]) < sccs.index(["a.py::caller"])


class TestSummaryFixpoint:
    def test_recursion_terminates_and_propagates_taint(self):
        result = analyze_sources(
            {
                "m.py": (
                    "def fetch(handle, n):\n"
                    "    if n:\n"
                    "        return fetch(handle, n - 1)\n"
                    "    return handle.load_view(0, 8)\n"
                    "\n"
                    "def body(handle: DomainHandle, raw):\n"
                    "    return fetch(handle, 3)\n"
                )
            }
        )
        assert [f.rule for f in result.findings] == ["R5"]
        finding = result.findings[0]
        assert finding.qualname == "body"
        assert [h.function for h in finding.call_path] == ["body", "fetch"]

    def test_mutual_recursion_terminates_and_propagates_taint(self):
        result = analyze_sources(
            {
                "m.py": (
                    "def ping(handle, n):\n"
                    "    if n:\n"
                    "        return pong(handle, n - 1)\n"
                    "    return handle.load_view(0, 8)\n"
                    "\n"
                    "def pong(handle, n):\n"
                    "    return ping(handle, n)\n"
                    "\n"
                    "def body(handle: DomainHandle, raw):\n"
                    "    return pong(handle, 2)\n"
                )
            }
        )
        assert [f.rule for f in result.findings] == ["R5"]
        functions = [h.function for h in result.findings[0].call_path]
        assert functions[0] == "body"
        assert "ping" in functions or "pong" in functions

    def test_cross_module_witness_spans_both_files(self):
        result = analyze_sources(
            {
                "helpers.py": (
                    "def grab_view(handle):\n"
                    "    return handle.load_view(0, 8)\n"
                ),
                "entry.py": (
                    "def body(handle: DomainHandle, raw):\n"
                    "    return grab_view(handle)\n"
                ),
            }
        )
        assert [f.rule for f in result.findings] == ["R5"]
        hops = result.findings[0].call_path
        assert [h.path for h in hops] == ["entry.py", "helpers.py"]

    def test_pure_recursion_stays_clean(self):
        result = analyze_sources(
            {
                "m.py": (
                    "def depth(handle, n):\n"
                    "    if n:\n"
                    "        return depth(handle, n - 1) + 1\n"
                    "    return 0\n"
                    "\n"
                    "def body(handle: DomainHandle, raw):\n"
                    "    return depth(handle, 3)\n"
                )
            }
        )
        assert result.findings == []


class TestUnknownCallConservatism:
    def test_unresolved_call_propagates_argument_taint(self):
        result = analyze_sources(
            {
                "m.py": (
                    "def body(handle: DomainHandle, raw):\n"
                    "    return mystery(handle.load_view(0, 8))\n"
                )
            }
        )
        assert [f.rule for f in result.findings] == ["R2"]

    def test_sanitizer_still_clears_through_unknown_arg(self):
        result = analyze_sources(
            {
                "m.py": (
                    "def body(handle: DomainHandle, raw):\n"
                    "    return bytes(handle.load_view(0, 8))\n"
                )
            }
        )
        assert result.findings == []

    @pytest.mark.parametrize("n_helpers", [1, 2])
    def test_resolved_sanitizing_helper_is_trusted(self, n_helpers):
        # A *resolved* helper whose summary shows no taint return is
        # trusted — resolution is what buys back precision.
        helper = (
            "def materialise(handle):\n"
            "    return bytes(handle.load_view(0, 8))\n"
        )
        body = (
            "def body(handle: DomainHandle, raw):\n"
            "    return materialise(handle)\n"
        )
        result = analyze_sources({"m.py": helper * n_helpers + body})
        assert result.findings == []
