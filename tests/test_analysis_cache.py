"""Incremental-cache tests: correctness must be invariant to cache state.

The headline property is byte-identity — a warm-cache run must render
exactly the same findings, in the same order, as ``--no-cache``.  The
rest covers the plumbing that keeps that invariant honest: content-hash
invalidation, version skew, and corrupt-file resilience.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cache import CACHE_VERSION, SummaryCache, content_key
from repro.analysis.__main__ import main as lint_main
from repro.analysis.runner import lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "sdradlint"

LEAKY = (
    "def body(handle: DomainHandle, raw):\n"
    "    return handle.load_view(0, 8)\n"
)
CLEAN = (
    "def body(handle: DomainHandle, raw):\n"
    "    return bytes(handle.load_view(0, 8))\n"
)


def _render_all(result) -> list:
    return [f.render() for f in result.sorted_findings()]


class TestByteIdentity:
    def test_warm_cache_matches_no_cache_over_fixtures(self, tmp_path):
        cache_file = str(tmp_path / "cache.json")
        target = [str(FIXTURES)]
        baseline = lint_paths(target, use_cache=False)
        cold = lint_paths(target, use_cache=True, cache_path=cache_file)
        warm = lint_paths(target, use_cache=True, cache_path=cache_file)
        assert _render_all(cold) == _render_all(baseline)
        assert _render_all(warm) == _render_all(baseline)
        assert [f.to_dict() for f in warm.sorted_findings()] == [
            f.to_dict() for f in baseline.sorted_findings()
        ]
        assert warm.cache_hits == warm.files
        assert warm.cache_misses == 0
        assert cold.cache_hits == 0

    def test_cli_json_output_is_byte_identical(self, tmp_path, capsys):
        cache_file = str(tmp_path / "cache.json")
        args = [str(FIXTURES / "r5_violations.py"), "--no-baseline", "--json"]
        lint_main(args + ["--no-cache"])
        no_cache_out = capsys.readouterr().out
        lint_main(args + ["--cache", cache_file])
        cold_out = capsys.readouterr().out
        lint_main(args + ["--cache", cache_file])
        warm_out = capsys.readouterr().out
        assert cold_out == no_cache_out
        assert warm_out == no_cache_out


class TestInvalidation:
    def test_edited_file_misses_and_reanalyzes(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "m.py"
        cache_file = str(tmp_path / "cache.json")

        target.write_text(LEAKY, encoding="utf-8")
        first = lint_paths([str(target)], use_cache=True, cache_path=cache_file)
        assert [f.rule for f in first.findings] == ["R2"]
        assert first.cache_misses == 1

        target.write_text(CLEAN, encoding="utf-8")
        second = lint_paths(
            [str(target)], use_cache=True, cache_path=cache_file
        )
        assert second.findings == []
        assert second.cache_misses == 1
        assert second.cache_hits == 0

    def test_version_skew_invalidates_everything(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "m.py"
        target.write_text(LEAKY, encoding="utf-8")
        cache_file = tmp_path / "cache.json"

        lint_paths([str(target)], use_cache=True, cache_path=str(cache_file))
        stale = json.loads(cache_file.read_text(encoding="utf-8"))
        stale["version"] = CACHE_VERSION + 1
        cache_file.write_text(json.dumps(stale), encoding="utf-8")

        result = lint_paths(
            [str(target)], use_cache=True, cache_path=str(cache_file)
        )
        assert [f.rule for f in result.findings] == ["R2"]
        assert result.cache_hits == 0
        assert result.cache_misses == 1

    def test_corrupt_cache_is_silently_rebuilt(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "m.py"
        target.write_text(LEAKY, encoding="utf-8")
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json", encoding="utf-8")

        result = lint_paths(
            [str(target)], use_cache=True, cache_path=str(cache_file)
        )
        assert [f.rule for f in result.findings] == ["R2"]
        # The run rewrote a valid cache over the corrupt one.
        rebuilt = json.loads(cache_file.read_text(encoding="utf-8"))
        assert rebuilt["version"] == CACHE_VERSION


class TestStoreMechanics:
    def test_content_key_is_content_addressed(self):
        assert content_key(LEAKY) == content_key(LEAKY)
        assert content_key(LEAKY) != content_key(CLEAN)

    def test_get_rejects_mangled_entry(self, tmp_path):
        cache = SummaryCache(str(tmp_path / "cache.json"))
        cache._entries["m.py"] = {"key": content_key(LEAKY), "facts": 42}
        assert cache.get("m.py", LEAKY) is None
        assert cache.misses == 1

    def test_save_is_a_noop_when_clean(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = SummaryCache(str(path))
        cache.load()
        cache.save()
        assert not path.exists()


class TestChangedOnly:
    def test_falls_back_to_full_run_outside_git(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nope"))
        target = tmp_path / "m.py"
        target.write_text(LEAKY, encoding="utf-8")
        result = lint_paths([str(target)], changed_only=True)
        assert result.files == 1
        assert [f.rule for f in result.findings] == ["R2"]
