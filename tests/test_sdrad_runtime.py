"""Tests for the SDRaD runtime: domains, entry/exit, rewind-and-discard."""

from __future__ import annotations

import pytest

from repro.errors import (
    DomainNotFound,
    DomainStateError,
    OutOfDomains,
    SdradError,
)
from repro.memory.mpk import PKEY_DEFAULT
from repro.memory.snapshot import capture, differs
from repro.sdrad.constants import ROOT_UDI, DomainFlags, DomainState
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.policy import AbortPolicy, ProcessCrashed, RetryPolicy
from repro.sdrad.runtime import SdradRuntime


def _wild_write_into(runtime, address):
    def attack(handle):
        handle.store(address, b"PWNED")

    return attack


class TestDomainLifecycle:
    def test_init_assigns_distinct_pkeys(self, runtime):
        d1 = runtime.domain_init()
        d2 = runtime.domain_init()
        assert d1.pkey != d2.pkey
        assert d1.udi != d2.udi

    def test_init_charges_setup_cost(self, runtime):
        before = runtime.clock.now
        runtime.domain_init()
        assert runtime.clock.now > before

    def test_pkey_exhaustion(self, runtime):
        for _ in range(15):
            runtime.domain_init()
        with pytest.raises(OutOfDomains):
            runtime.domain_init()

    def test_destroy_frees_pkey_and_regions(self, runtime):
        created = [runtime.domain_init() for _ in range(15)]
        for domain in created:
            runtime.domain_destroy(domain.udi)
        # all 15 keys are reusable again
        for _ in range(15):
            runtime.domain_init()

    def test_destroy_unknown_rejected(self, runtime):
        with pytest.raises(DomainNotFound):
            runtime.domain_destroy(999)

    def test_destroy_root_rejected(self, runtime):
        with pytest.raises(SdradError):
            runtime.domain_destroy(ROOT_UDI)

    def test_destroy_entered_domain_rejected(self, runtime, domain):
        def inner(handle):
            runtime.domain_destroy(domain.udi)

        with pytest.raises(DomainStateError):
            runtime.execute(domain.udi, inner)

    def test_explicit_udi(self, runtime):
        domain = runtime.domain_init(udi=77)
        assert domain.udi == 77
        with pytest.raises(DomainStateError):
            runtime.domain_init(udi=77)

    def test_unknown_parent_rejected(self, runtime):
        with pytest.raises(DomainNotFound):
            runtime.domain_init(parent_udi=123)

    def test_region_recycling_after_destroy(self, runtime):
        """Per-connection churn must not exhaust the address space."""
        for _ in range(200):
            domain = runtime.domain_init(heap_size=64 * 1024, stack_size=16 * 1024)
            runtime.domain_destroy(domain.udi)


class TestExecuteCleanPath:
    def test_returns_value(self, runtime, domain):
        result = runtime.execute(domain.udi, lambda h: 42)
        assert result.ok
        assert result.value == 42
        assert result.unwrap() == 42

    def test_charges_roundtrip_cost(self, runtime, domain):
        before = runtime.clock.now
        runtime.execute(domain.udi, lambda h: None)
        elapsed = runtime.clock.now - before
        assert elapsed == pytest.approx(runtime.cost.domain_roundtrip())

    def test_handle_malloc_store_load(self, runtime, domain):
        def work(handle):
            addr = handle.malloc(32)
            handle.store(addr, b"payload")
            return handle.load(addr, 7)

        assert runtime.execute(domain.udi, work).value == b"payload"

    def test_pkru_restored_after_exit(self, runtime, domain):
        before = runtime.space.pkru.snapshot()
        runtime.execute(domain.udi, lambda h: None)
        assert runtime.space.pkru.snapshot() == before

    def test_reentrancy_rejected(self, runtime, domain):
        def inner(handle):
            runtime.execute(domain.udi, lambda h: None)

        with pytest.raises(DomainStateError, match="re-entered"):
            runtime.execute(domain.udi, inner)

    def test_stats_track_entries(self, runtime, domain):
        runtime.execute(domain.udi, lambda h: None)
        runtime.execute(domain.udi, lambda h: None)
        assert domain.stats.entries == 2
        assert domain.stats.clean_exits == 2

    def test_logic_errors_propagate(self, runtime, domain):
        def buggy(handle):
            raise KeyError("application bug")

        with pytest.raises(KeyError):
            runtime.execute(domain.udi, buggy)
        # trusted state restored even so
        assert runtime.contexts.depth == 0


class TestIsolationEnforcement:
    def test_domain_cannot_touch_root_heap(self, runtime, domain):
        result = runtime.execute(
            domain.udi, _wild_write_into(runtime, runtime.root.heap_base)
        )
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_domain_cannot_touch_sibling(self, runtime):
        a = runtime.domain_init()
        b = runtime.domain_init()
        result = runtime.execute(a.udi, _wild_write_into(runtime, b.heap_base))
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_victim_memory_unchanged_after_attack(self, runtime):
        a = runtime.domain_init()
        b = runtime.domain_init()
        runtime.execute(b.udi, lambda h: h.store(h.malloc(32), b"victim data!"))
        snap = capture(runtime.space, b.heap_base, b.heap_size)
        runtime.execute(a.udi, _wild_write_into(runtime, b.heap_base + 64))
        assert differs(runtime.space, snap) == []

    def test_domain_can_use_own_memory(self, runtime, domain):
        def work(handle):
            addr = handle.malloc(16)
            handle.store(addr, b"mine")
            return handle.load(addr, 4)

        assert runtime.execute(domain.udi, work).value == b"mine"

    def test_nonisolated_heap_shares_parent_key(self, runtime):
        child = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.NONISOLATED_HEAP
        )

        def touch_root(handle):
            handle.store(runtime.root.heap_base + 32, b"shared ok")

        result = runtime.execute(child.udi, touch_root)
        assert result.ok


class TestRewind:
    def test_fault_returns_error_result(self, runtime, domain):
        result = runtime.execute(
            domain.udi, _wild_write_into(runtime, runtime.root.heap_base)
        )
        assert not result.ok
        assert result.fault is not None
        assert result.recovery_time > 0

    def test_rewind_charges_paper_cost(self, runtime, domain):
        result = runtime.execute(
            domain.udi, _wild_write_into(runtime, runtime.root.heap_base)
        )
        assert result.recovery_time == pytest.approx(runtime.cost.rewind)

    def test_domain_usable_after_rewind(self, runtime, domain):
        runtime.execute(domain.udi, _wild_write_into(runtime, runtime.root.heap_base))
        result = runtime.execute(domain.udi, lambda h: "alive")
        assert result.ok and result.value == "alive"

    def test_rewind_discards_heap(self, runtime, domain):
        def leaky(handle):
            handle.malloc(1024)
            handle.store(0, b"x")  # null-page fault after allocating

        runtime.execute(domain.udi, leaky)
        assert domain.heap.stats().live_blocks == 0

    def test_rewind_unwinds_stack(self, runtime, domain):
        def deep(handle):
            handle.push_frame("a")
            handle.push_frame("b")
            handle.store(0, b"x")

        runtime.execute(domain.udi, deep)
        assert domain.stack.depth == 0

    def test_rewind_counted_in_stats(self, runtime, domain):
        runtime.execute(domain.udi, _wild_write_into(runtime, runtime.root.heap_base))
        assert domain.stats.faults == 1
        assert domain.stats.rewinds == 1
        assert domain.stats.fault_kinds == {"pkey-violation": 1}

    def test_scrub_flag_scrubs_pages(self):
        runtime = SdradRuntime(scrub_mode="eager")
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )

        def leave_secret_then_fault(handle):
            addr = handle.malloc(64)
            handle.store(addr, b"S3CR3T" * 10)
            handle.store(0, b"x")

        runtime.execute(domain.udi, leave_secret_then_fault)
        heap_bytes = runtime.space.raw_load(domain.heap_base, domain.heap_size)
        assert b"S3CR3T" not in heap_bytes

    def test_lazy_scrub_never_leaks_into_new_allocations(self, runtime):
        # Default scrub_mode="lazy": the rewind leaves stale bytes behind,
        # but the next entry's allocations are zero-filled on hand-out.
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )

        def leave_secret_then_fault(handle):
            addr = handle.malloc(64)
            handle.store(addr, b"S3CR3T" * 10)
            handle.store(0, b"x")

        runtime.execute(domain.udi, leave_secret_then_fault)

        def read_fresh_block(handle):
            addr = handle.malloc(64)
            return handle.load(addr, handle.capacity(addr))

        result = runtime.execute(domain.udi, read_fresh_block)
        assert result.ok
        assert bytes(result.value).strip(b"\x00") == b""

    def test_no_scrub_leaves_garbage(self, runtime, domain):
        def leave_secret_then_fault(handle):
            addr = handle.malloc(64)
            handle.store(addr, b"S3CR3T" * 10)
            handle.store(0, b"x")

        runtime.execute(domain.udi, leave_secret_then_fault)
        heap_bytes = runtime.space.raw_load(domain.heap_base, domain.heap_size)
        assert b"S3CR3T" in heap_bytes

    def test_trace_records_fault_and_rewind(self, runtime, domain):
        runtime.execute(domain.udi, _wild_write_into(runtime, runtime.root.heap_base))
        assert runtime.tracer.count("domain.fault") == 1
        assert runtime.tracer.count("domain.rewind") == 1

    def test_check_heap_on_exit_catches_silent_corruption(self, runtime):
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.CHECK_HEAP_ON_EXIT
        )

        def silent_uaf(handle):
            a = handle.malloc(32)
            capacity = handle.capacity(a)
            handle.malloc(32)
            handle.free(a)
            # dangling write smashing the neighbour's header, then return
            # "successfully" — only the exit sweep can catch this
            handle.store(a, b"Z" * (capacity + 8 + 16))
            return "looks fine"

        result = runtime.execute(domain.udi, silent_uaf)
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.HEAP_INTEGRITY


class TestPolicies:
    def test_abort_policy_raises_process_crashed(self, runtime, domain):
        with pytest.raises(ProcessCrashed):
            runtime.execute(
                domain.udi,
                _wild_write_into(runtime, runtime.root.heap_base),
                policy=AbortPolicy(),
            )
        assert runtime.contexts.depth == 0

    def test_retry_policy_reexecutes(self, runtime, domain):
        attempts = []

        def flaky(handle):
            attempts.append(1)
            if len(attempts) < 3:
                handle.store(0, b"x")
            return "eventually"

        result = runtime.execute(domain.udi, flaky, policy=RetryPolicy(max_retries=5))
        assert result.ok
        assert result.value == "eventually"
        assert result.retries == 2

    def test_retry_budget_exhaustion_returns_error(self, runtime, domain):
        def always_faults(handle):
            handle.store(0, b"x")

        result = runtime.execute(
            domain.udi, always_faults, policy=RetryPolicy(max_retries=2)
        )
        assert not result.ok
        assert result.retries == 2


class TestNestedDomains:
    def test_nested_execution(self, runtime):
        outer = runtime.domain_init()
        inner = runtime.domain_init()

        def outer_fn(handle):
            result = runtime.execute(inner.udi, lambda h: "deep")
            return ("outer", result.value)

        assert runtime.execute(outer.udi, outer_fn).value == ("outer", "deep")

    def test_inner_fault_contained_from_outer(self, runtime):
        outer = runtime.domain_init()
        inner = runtime.domain_init()

        def outer_fn(handle):
            result = runtime.execute(
                inner.udi, _wild_write_into(runtime, runtime.root.heap_base)
            )
            return "outer survived" if not result.ok else "?"

        result = runtime.execute(outer.udi, outer_fn)
        assert result.ok
        assert result.value == "outer survived"

    def test_pkru_restored_through_nesting(self, runtime):
        outer = runtime.domain_init()
        inner = runtime.domain_init()
        before = runtime.space.pkru.snapshot()

        def outer_fn(handle):
            runtime.execute(inner.udi, lambda h: None)
            # back in the outer domain: its own memory must be accessible
            addr = handle.malloc(8)
            handle.store(addr, b"still ok")
            return True

        assert runtime.execute(outer.udi, outer_fn).value
        assert runtime.space.pkru.snapshot() == before


class TestUnisolatedExecution:
    def test_clean_run_returns_value(self, runtime):
        assert runtime.execute_unisolated(lambda h: 7) == 7

    def test_fault_crashes_process(self, runtime):
        with pytest.raises(ProcessCrashed):
            runtime.execute_unisolated(lambda h: h.store(0, b"x"))

    def test_no_isolation_cost(self, runtime):
        before = runtime.clock.now
        runtime.execute_unisolated(lambda h: None)
        assert runtime.clock.now == before

    def test_logic_errors_propagate_unwrapped(self, runtime):
        with pytest.raises(ValueError):
            runtime.execute_unisolated(lambda h: (_ for _ in ()).throw(ValueError()))


class TestDataMovement:
    def test_copy_into_and_out(self, runtime, domain):
        addr = runtime.copy_into(domain.udi, b"cross-domain payload")
        assert runtime.copy_out(domain.udi, addr, 20) == b"cross-domain payload"

    def test_copy_tracked_in_stats(self, runtime, domain):
        runtime.copy_into(domain.udi, b"12345678")
        assert domain.stats.bytes_copied_in == 8

    def test_copied_data_visible_inside_domain(self, runtime, domain):
        addr = runtime.copy_into(domain.udi, b"hello")

        def read_it(handle):
            return handle.load(addr, 5)

        assert runtime.execute(domain.udi, read_it).value == b"hello"


class TestRootDomain:
    def test_root_exists_with_default_key(self, runtime):
        assert runtime.root.udi == ROOT_UDI
        assert runtime.root.pkey == PKEY_DEFAULT

    def test_domain_lookup(self, runtime, domain):
        assert runtime.domain(domain.udi) is domain
        with pytest.raises(DomainNotFound):
            runtime.domain(424242)

    def test_domains_listing(self, runtime, domain):
        udis = {d.udi for d in runtime.domains()}
        assert ROOT_UDI in udis
        assert domain.udi in udis

    def test_execute_in_destroyed_domain_rejected(self, runtime):
        domain = runtime.domain_init()
        udi = domain.udi
        runtime.domain_destroy(udi)
        with pytest.raises(DomainNotFound):
            runtime.execute(udi, lambda h: None)

    def test_domain_state_transitions(self, runtime, domain):
        assert domain.state is DomainState.INITIALIZED

        def check_active(handle):
            assert domain.state is DomainState.ACTIVE

        runtime.execute(domain.udi, check_active)
        assert domain.state is DomainState.INITIALIZED
