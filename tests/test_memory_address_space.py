"""Tests for the checked load/store path — the heart of the isolation model."""

from __future__ import annotations

import pytest

from repro.errors import (
    PermissionFault,
    ProtectionKeyViolation,
    SdradError,
    SegmentationFault,
)
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE


@pytest.fixture
def space() -> AddressSpace:
    s = AddressSpace(size=64 * PAGE_SIZE)
    s.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
    return s


class TestBasicAccess:
    def test_store_load_roundtrip(self, space: AddressSpace):
        space.store(100, b"hello")
        assert space.load(100, 5) == b"hello"

    def test_word_helpers(self, space: AddressSpace):
        space.store_u32(0, 0xDEADBEEF)
        assert space.load_u32(0) == 0xDEADBEEF
        space.store_u64(8, 2**63 + 5)
        assert space.load_u64(8) == 2**63 + 5
        space.store_u8(16, 0x7F)
        assert space.load_u8(16) == 0x7F

    def test_counters_track_accesses(self, space: AddressSpace):
        space.store(0, b"x")
        space.load(0, 1)
        space.load(0, 1)
        assert space.stores == 1
        assert space.loads == 2

    def test_zero_length_access_is_noop(self, space: AddressSpace):
        assert space.load(0, 0) == b""

    def test_negative_length_rejected(self, space: AddressSpace):
        with pytest.raises(SdradError):
            space.load(0, -1)


class TestSegmentationFaults:
    def test_unmapped_page_load_faults(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.load(10 * PAGE_SIZE, 4)

    def test_unmapped_page_store_faults(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.store(10 * PAGE_SIZE, b"data")

    def test_out_of_space_faults(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.load(space.size, 1)

    def test_access_spanning_into_unmapped_faults(self, space: AddressSpace):
        # mapped region is 4 pages; write crossing its end must fault
        with pytest.raises(SegmentationFault):
            space.store(4 * PAGE_SIZE - 2, b"1234")

    def test_fault_counter_increments(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.load(10 * PAGE_SIZE, 1)
        assert space.faults == 1


class TestPagePermissions:
    def test_readonly_page_rejects_store(self, space: AddressSpace):
        space.page_table.protect_range(0, PAGE_SIZE, readable=True, writable=False)
        with pytest.raises(PermissionFault):
            space.store(10, b"x")
        assert space.load(10, 1)  # reads still fine

    def test_noread_page_rejects_load(self, space: AddressSpace):
        space.page_table.protect_range(0, PAGE_SIZE, readable=False, writable=True)
        with pytest.raises(PermissionFault):
            space.load(10, 1)


class TestProtectionKeys:
    def test_untagged_pages_accessible_at_reset(self, space: AddressSpace):
        space.store(0, b"ok")  # key 0, reset PKRU allows

    def test_tagged_page_denied_by_default(self, space: AddressSpace):
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 3)
        with pytest.raises(ProtectionKeyViolation):
            space.load(PAGE_SIZE, 1)
        with pytest.raises(ProtectionKeyViolation):
            space.store(PAGE_SIZE, b"x")

    def test_grant_enables_access(self, space: AddressSpace):
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 3)
        space.pkru.grant(3)
        space.store(PAGE_SIZE, b"now allowed")
        assert space.load(PAGE_SIZE, 11) == b"now allowed"

    def test_write_disable_allows_reads_only(self, space: AddressSpace):
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 3)
        space.pkru.grant(3, read=True, write=False)
        space.load(PAGE_SIZE, 1)
        with pytest.raises(ProtectionKeyViolation):
            space.store(PAGE_SIZE, b"x")

    def test_violation_reports_key(self, space: AddressSpace):
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 5)
        with pytest.raises(ProtectionKeyViolation) as excinfo:
            space.load(PAGE_SIZE, 1)
        assert excinfo.value.pkey == 5

    def test_cross_key_spanning_access_faults(self, space: AddressSpace):
        """An access spanning pages of two keys faults on the denied one."""
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 4)
        # [PAGE_SIZE-2, PAGE_SIZE+2) spans key-0 page and key-4 page
        with pytest.raises(ProtectionKeyViolation):
            space.load(PAGE_SIZE - 2, 4)


class TestRawAccess:
    def test_raw_bypasses_pkeys(self, space: AddressSpace):
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 3)
        space.raw_store(PAGE_SIZE, b"kernel")
        assert space.raw_load(PAGE_SIZE, 6) == b"kernel"

    def test_raw_bypasses_mapping(self, space: AddressSpace):
        space.raw_store(20 * PAGE_SIZE, b"anywhere")
        assert space.raw_load(20 * PAGE_SIZE, 8) == b"anywhere"

    def test_raw_still_bounds_checked(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.raw_load(space.size, 1)

    def test_raw_fill(self, space: AddressSpace):
        space.raw_store(0, b"\xff" * 16)
        space.raw_fill(0, 16, 0)
        assert space.raw_load(0, 16) == b"\x00" * 16


class TestCheckModes:
    def test_off_mode_never_faults_on_mapping(self):
        space = AddressSpace(size=8 * PAGE_SIZE, check_mode="off")
        space.store(0, b"unchecked")  # nothing mapped, still fine
        assert space.load(0, 9) == b"unchecked"

    def test_first_mode_checks_only_first_page(self):
        space = AddressSpace(size=8 * PAGE_SIZE, check_mode="first")
        space.page_table.map_range(0, PAGE_SIZE)
        # spans into unmapped page 1, but only page 0 is checked
        space.store(PAGE_SIZE - 2, b"1234")

    def test_strict_mode_checks_every_page(self):
        space = AddressSpace(size=8 * PAGE_SIZE, check_mode="strict")
        space.page_table.map_range(0, PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            space.store(PAGE_SIZE - 2, b"1234")

    def test_unknown_mode_rejected(self):
        with pytest.raises(SdradError):
            AddressSpace(size=PAGE_SIZE, check_mode="bogus")  # type: ignore[arg-type]


class TestBatchedAndZeroCopyAccess:
    def test_load_many_matches_individual_loads(self, space: AddressSpace):
        space.store(0, b"aaaa")
        space.store(100, b"bbbb")
        space.store(PAGE_SIZE + 4, b"cccc")
        requests = [(0, 4), (100, 4), (PAGE_SIZE + 4, 4)]
        assert space.load_many(requests) == [b"aaaa", b"bbbb", b"cccc"]

    def test_load_many_counts_each_access(self, space: AddressSpace):
        space.store(0, b"x" * 8)
        before = space.loads
        space.load_many([(0, 4), (4, 4)])
        assert space.loads == before + 2

    def test_load_many_faults_like_load(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.load_many([(0, 4), (10 * PAGE_SIZE, 4)])

    def test_store_many_roundtrip(self, space: AddressSpace):
        space.store_many([(0, b"one"), (50, b"two")])
        assert space.load(0, 3) == b"one"
        assert space.load(50, 3) == b"two"
        assert space.stores == 2

    def test_store_many_faults_on_readonly_page(self, space: AddressSpace):
        space.page_table.protect_range(0, PAGE_SIZE, readable=True, writable=False)
        with pytest.raises(PermissionFault):
            space.store_many([(0, b"x")])

    def test_load_view_is_zero_copy_and_readonly(self, space: AddressSpace):
        space.store(0, b"live")
        view = space.load_view(0, 4)
        assert bytes(view) == b"live"
        space.store(0, b"LIVE")
        assert bytes(view) == b"LIVE"  # aliases live memory
        with pytest.raises(TypeError):
            view[0] = 0  # type: ignore[index]

    def test_load_view_checked(self, space: AddressSpace):
        with pytest.raises(SegmentationFault):
            space.load_view(10 * PAGE_SIZE, 4)

    def test_raw_view_and_raw_load_many(self, space: AddressSpace):
        space.raw_store(8, b"meta")
        assert bytes(space.raw_view(8, 4)) == b"meta"
        assert space.raw_load_many([(8, 4), (8, 2)]) == [b"meta", b"me"]

    def test_raw_fill_nonzero_value_and_large_region(self, space: AddressSpace):
        space.raw_fill(0, 3 * PAGE_SIZE, 0xAB)
        assert space.raw_load(0, 3 * PAGE_SIZE) == b"\xab" * (3 * PAGE_SIZE)
        space.raw_fill(16, 8, 7)
        assert space.raw_load(16, 8) == bytes([7]) * 8
