"""Tests for power, energy, carbon and lifecycle models (E5's machinery)."""

from __future__ import annotations

import pytest

from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import HOURS, YEARS
from repro.sim.cost import GIB
from repro.sustainability.carbon import CarbonModel, rebound_adjusted
from repro.sustainability.energy import EnergyModel
from repro.sustainability.lca import LifecycleAssessment, size_deployment
from repro.sustainability.power import ServerPowerModel, joules_to_kwh

MODEL = RecoveryStrategyModel()


class TestPowerModel:
    def test_idle_and_max(self):
        power = ServerPowerModel(idle_watts=100, max_watts=300, pue=1.0)
        assert power.watts(0.0) == 100
        assert power.watts(1.0) == 300
        assert power.watts(0.5) == 200

    def test_pue_multiplies(self):
        power = ServerPowerModel(idle_watts=100, max_watts=300, pue=1.5)
        assert power.watts(0.0) == 150

    def test_energy_kwh(self):
        power = ServerPowerModel(idle_watts=1000, max_watts=1000, pue=1.0)
        assert power.energy_kwh(0.0, HOURS) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerPowerModel(idle_watts=400, max_watts=300)
        with pytest.raises(ValueError):
            ServerPowerModel(pue=0.9)
        with pytest.raises(ValueError):
            ServerPowerModel().watts(1.5)
        with pytest.raises(ValueError):
            ServerPowerModel().energy_joules(0.5, -1)

    def test_joule_kwh_conversion(self):
        assert joules_to_kwh(3.6e6) == pytest.approx(1.0)


class TestEnergyModel:
    def test_single_replica_energy(self):
        energy = EnergyModel().deployment_energy(MODEL.sdrad_rewind(), horizon=YEARS)
        assert energy.replicas == 1
        assert energy.operational_kwh > 0

    def test_replication_costs_more(self):
        model = EnergyModel()
        single = model.deployment_energy(MODEL.sdrad_rewind(), horizon=YEARS)
        double = model.deployment_energy(
            MODEL.replicated_failover(2), horizon=YEARS
        )
        assert double.operational_kwh > 1.4 * single.operational_kwh

    def test_overhead_inflates_utilization(self):
        model = EnergyModel()
        energy = model.deployment_energy(
            MODEL.sdrad_rewind(), base_utilization=0.30
        )
        assert energy.effective_utilization == pytest.approx(
            0.30 * 1.03, rel=1e-6
        )

    def test_overhead_cost_tiny_vs_replica_cost(self):
        """The paper's core trade: a few % CPU ≪ a whole standby server."""
        model = EnergyModel()
        rewind = model.deployment_energy(MODEL.sdrad_rewind(), horizon=YEARS)
        plain = model.deployment_energy(
            MODEL.process_restart(GIB), horizon=YEARS
        )
        replicated = model.deployment_energy(
            MODEL.replicated_failover(2), horizon=YEARS
        )
        overhead_kwh = rewind.operational_kwh - plain.operational_kwh
        replica_kwh = replicated.operational_kwh - plain.operational_kwh
        assert overhead_kwh < 0.1 * replica_kwh

    def test_savings_vs(self):
        model = EnergyModel()
        saving = model.savings_vs(
            MODEL.sdrad_rewind(), MODEL.replicated_failover(2)
        )
        assert 0.2 < saving < 0.8

    def test_energy_per_request(self):
        model = EnergyModel()
        joules = model.energy_per_request(MODEL.sdrad_rewind(), 1000.0)
        assert 0.01 < joules < 10.0

    def test_validation(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.deployment_energy(MODEL.sdrad_rewind(), base_utilization=2.0)
        with pytest.raises(ValueError):
            model.energy_per_request(MODEL.sdrad_rewind(), 0.0)


class TestCarbonModel:
    def test_operational(self):
        carbon = CarbonModel(grid_intensity_g_per_kwh=500)
        assert carbon.operational_kg(1000.0) == pytest.approx(500.0)

    def test_embodied_amortisation(self):
        carbon = CarbonModel(embodied_kg_per_server=1200, server_lifetime=4 * YEARS)
        assert carbon.embodied_kg(1, YEARS) == pytest.approx(300.0)
        assert carbon.embodied_kg(2, YEARS) == pytest.approx(600.0)

    def test_total(self):
        carbon = CarbonModel()
        total = carbon.total_kg(100.0, 1, YEARS)
        assert total == pytest.approx(
            carbon.operational_kg(100.0) + carbon.embodied_kg(1, YEARS)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CarbonModel(grid_intensity_g_per_kwh=-1)
        with pytest.raises(ValueError):
            CarbonModel().operational_kg(-1)
        with pytest.raises(ValueError):
            CarbonModel().embodied_kg(-1, YEARS)

    def test_rebound(self):
        assert rebound_adjusted(100.0, 0.3) == pytest.approx(70.0)
        assert rebound_adjusted(100.0, 0.0) == 100.0
        assert rebound_adjusted(100.0, 1.2) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            rebound_adjusted(-1.0, 0.0)


class TestSizing:
    def test_rewind_meets_alone(self):
        sized = size_deployment(MODEL.sdrad_rewind(), 1000, 0.99999, MODEL)
        assert sized.meets_target
        assert sized.spec.replicas == 1

    def test_restart_escalates_to_replication(self):
        base = MODEL.process_restart(10 * GIB)
        sized = size_deployment(base, 3, 0.99999, MODEL)
        assert sized.meets_target
        assert sized.spec.replicas == 2
        assert sized.spec.name == "replicated-2x"

    def test_restart_meets_alone_at_low_fault_rate(self):
        base = MODEL.process_restart(10 * GIB)
        sized = size_deployment(base, 1, 0.99999, MODEL)
        assert sized.meets_target
        assert sized.spec.replicas == 1

    def test_impossible_target_reported(self):
        base = MODEL.process_restart(10 * GIB)
        # six nines budget ~31.5 s/yr; failover of 2 s per fault with 100
        # faults/yr = 200 s downtime: unachievable even with MAX replicas
        sized = size_deployment(base, 100, 0.999999, MODEL)
        assert not sized.meets_target


class TestLifecycleAssessment:
    def test_paper_scenario_rows(self):
        lca = LifecycleAssessment()
        rows = lca.assess(dataset_bytes=10 * GIB, faults_per_year=3)
        by_name = {r.strategy: r for r in rows}
        assert by_name["sdrad-rewind"].replicas == 1
        assert by_name["process-restart"].replicas == 2
        assert all(r.meets_target for r in rows)
        # SDRaD's total footprint beats the replicated alternatives clearly
        assert (
            by_name["sdrad-rewind"].total_kg
            < 0.7 * by_name["process-restart"].total_kg
        )

    def test_low_fault_rate_collapses_the_advantage(self):
        """Honest model: with ~1 fault/year, restart needs no replicas and
        SDRaD's energy advantage disappears (only its CPU overhead
        remains). The claim is conditional on fault pressure."""
        lca = LifecycleAssessment()
        rows = lca.assess(dataset_bytes=10 * GIB, faults_per_year=1)
        by_name = {r.strategy: r for r in rows}
        assert by_name["process-restart"].replicas == 1
        assert by_name["sdrad-rewind"].total_kg >= by_name[
            "process-restart"
        ].total_kg * 0.99

    def test_carbon_saving_with_rebound(self):
        lca = LifecycleAssessment()
        rows = lca.assess(dataset_bytes=10 * GIB, faults_per_year=3)
        nominal = lca.carbon_saving(rows)
        with_rebound = lca.carbon_saving(rows, rebound_fraction=0.3)
        assert with_rebound == pytest.approx(0.7 * nominal)
        assert nominal > 0
