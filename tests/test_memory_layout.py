"""Tests for address-space layout helpers."""

from __future__ import annotations

from repro.memory.layout import (
    PAGE_SIZE,
    is_page_aligned,
    page_align_up,
    page_base,
    page_index,
    pages_spanned,
)


class TestPageMath:
    def test_page_index(self):
        assert page_index(0) == 0
        assert page_index(PAGE_SIZE - 1) == 0
        assert page_index(PAGE_SIZE) == 1
        assert page_index(10 * PAGE_SIZE + 5) == 10

    def test_page_base(self):
        assert page_base(0) == 0
        assert page_base(PAGE_SIZE + 17) == PAGE_SIZE

    def test_align_up(self):
        assert page_align_up(0) == 0
        assert page_align_up(1) == PAGE_SIZE
        assert page_align_up(PAGE_SIZE) == PAGE_SIZE
        assert page_align_up(PAGE_SIZE + 1) == 2 * PAGE_SIZE

    def test_is_page_aligned(self):
        assert is_page_aligned(0)
        assert is_page_aligned(3 * PAGE_SIZE)
        assert not is_page_aligned(3 * PAGE_SIZE + 8)


class TestPagesSpanned:
    def test_single_page(self):
        assert list(pages_spanned(0, 10)) == [0]
        assert list(pages_spanned(100, PAGE_SIZE - 100)) == [0]

    def test_exact_page(self):
        assert list(pages_spanned(0, PAGE_SIZE)) == [0]

    def test_crossing_boundary(self):
        assert list(pages_spanned(PAGE_SIZE - 4, 8)) == [0, 1]

    def test_multiple_pages(self):
        span = list(pages_spanned(PAGE_SIZE, 3 * PAGE_SIZE))
        assert span == [1, 2, 3]

    def test_zero_length(self):
        assert list(pages_spanned(500, 0)) == []
