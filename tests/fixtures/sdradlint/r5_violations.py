"""Planted R5 violations: interprocedural domain-heap escapes.

Every ``leak_*`` function is a domain body (DomainHandle first
parameter); the helpers above them are plain functions whose summaries
carry the escape. Parsed, never imported.
"""

GLOBAL_STASH = {}


def fetch_view(handle, offset):
    # The source lives here: callers receive a live alias.
    return handle.load_view(offset, 64)


def fetch_view_indirect(handle):
    # One more hop: the alias crosses two helper frames.
    return fetch_view(handle, 8)


def plant_alias(record, handle):
    # Out-param escape: a fresh alias planted into the caller's object.
    record.view = handle.load_view(0, 16)


def stash_alias(handle):
    # The sink lives here: a helper leaking straight to trusted state.
    GLOBAL_STASH["view"] = handle.load_view(0, 8)


def leak_helper_return(handle: DomainHandle, request):  # noqa: F821
    view = fetch_view(handle, 0)
    return view  # expect[R5]


def leak_deep_helper_return(handle: DomainHandle):  # noqa: F821
    data = fetch_view_indirect(handle)
    return data  # expect[R5]


def leak_out_param(handle: DomainHandle, record):  # noqa: F821
    plant_alias(record, handle)  # expect[R5]
    return record.size


def leak_via_helper_sink(handle: DomainHandle):  # noqa: F821
    stash_alias(handle)  # expect[R5]
    return None
