"""Planted R7 violations: FFI sandbox entries breaking the boundary contract.

Entries are declared both ways the registry understands — ``@sandboxed``
decorators and ``sandboxed(...)`` factory calls. Parsed, never imported.
"""

LAST_HANDLE = {}


@sandboxed  # noqa: F821  # expect[R7]
def no_alternate_action(payload):
    # No fallback=, no retries=: a violation escalates to the caller.
    return payload


@sandboxed(retries=0)  # noqa: F821  # expect[R7]
def zero_retries_is_no_action(payload):
    return payload


@sandboxed(fallback="cached-result")  # noqa: F821
def raw_boundary_entry(payload):
    addr = runtime.copy_into(udi, payload)  # noqa: F821  # expect[R7]
    return addr


@sandboxed(fallback="cached-result")  # noqa: F821
def raw_through_helper(payload):
    return _push_raw(payload)  # expect[R7]


def _push_raw(payload):
    return runtime.copy_into(udi, payload)  # noqa: F821


def _stash_handle(h):
    registry.last_handle = h  # noqa: F821


def leaky_handle_entry(handle, payload):
    LAST_HANDLE["h"] = handle  # expect[R7]
    _stash_handle(handle)  # expect[R7]
    return handle  # expect[R7]


sandbox.sandboxed(  # noqa: F821
    leaky_handle_entry, wants_handle=True, fallback="degraded"
)
