"""Planted R2 violations: domain-heap values escaping unmarshalled.

Every function is a domain body (DomainHandle first parameter). Parsed,
never imported.
"""

GLOBAL_STASH = None


def leak_view_by_return(handle: DomainHandle, raw):  # noqa: F821
    buf = handle.malloc(len(raw))
    handle.store(buf, raw)
    view = handle.load_view(buf, len(raw))
    return view  # expect[R2]


def leak_view_to_global(handle: DomainHandle, raw):  # noqa: F821
    global GLOBAL_STASH
    buf = handle.malloc(64)
    GLOBAL_STASH = handle.load_view(buf, 64)  # expect[R2,R3]


def leak_address_to_attribute(handle: DomainHandle, server):  # noqa: F821
    addr = handle.malloc(128)
    server.scratch_addr = addr  # expect[R2,R3]


def leak_view_to_caller_container(handle: DomainHandle, out):  # noqa: F821
    out["view"] = handle.load_view(0, 16)  # expect[R2]


def leak_view_inside_record(handle: DomainHandle, raw):  # noqa: F821
    buf = handle.malloc(len(raw))
    view = handle.load_view(buf, len(raw))
    return ParsedOp(value=view)  # expect[R2]  # noqa: F821


def leak_stack_address(handle: DomainHandle, raw):  # noqa: F821
    frame = handle.push_frame("p")
    try:
        key_buf = frame.alloca(256)
        return key_buf  # expect[R2]
    finally:
        handle.pop_frame(frame)
