"""R3 near-misses: effects confined to domain memory and the clock.

Parsed, never imported.
"""


def quiet_parser(handle: DomainHandle, raw):  # noqa: F821
    handle.charge(1e-6)  # the sanctioned accounting channel
    rel = os.path.join("a", "b")  # noqa: F821 — pure string helper
    total = 0
    for byte in raw:
        total += byte
    buf = handle.malloc(max(total % 64, 1))
    handle.store(buf, raw[: total % 64])
    handle.free(buf)
    return rel, total


def local_state_only(handle: DomainHandle, raw):  # noqa: F821
    seen = {}
    seen["raw"] = len(raw)  # local mutation: discarded with the frame
    header = struct.unpack(">H", raw[:2])  # noqa: F821 — pure
    return header, seen
