"""R4 near-misses: PKRU writes properly inside the entry-gate sequence.

Mirrors the runtime's execute/_apply_domain_pkru split, the PR2
entry-ticket replay, the register's own micro-ops, and the annotated-gate
escape hatch. Parsed, never imported.
"""


class GatedRuntime:
    def execute(self, domain):
        saved = self.space.pkru.snapshot()
        context = self.contexts.push(domain.udi, saved, 0.0)
        self.space.pkru.write(self.space.pkru.DENY_ALL_EXCEPT_DEFAULT)
        self.derive_domain_pkru(domain)
        # The re-entry ticket replay (PR2): still behind the push.
        self.space.pkru.write_prepared(saved, 2)
        self.contexts.pop(context)
        self.space.pkru.write(saved)

    def derive_domain_pkru(self, domain):
        # Only reachable from the gate above: guarded by closure.
        self.space.pkru.revoke(0)
        self.space.pkru.grant(domain.pkey, read=True, write=True)


class PkruRegister:
    def grant_inside_register(self, pkey):
        # The register's own micro-op IS the instruction, not a call site.
        self._pkru.write(1 << pkey)


def audited_restore(space, saved):  # sdradlint: gate
    space.pkru.write(saved)
