"""R1 near-misses: correctly paired brackets that must NOT be reported.

Mirrors the repo's real idioms (memcached/http parsers, the runtime's
enter/_leave split, the DomainHandle facade). Parsed, never imported.
"""


def memcached_idiom(handle: DomainHandle, raw):  # noqa: F821
    frame = handle.push_frame("process_command")
    try:
        if not raw:
            return None
        return raw
    finally:
        handle.pop_frame(frame)


def straight_line(handle: DomainHandle):  # noqa: F821
    frame = handle.push_frame("s")
    frame.alloca(16)
    handle.pop_frame(frame)


def nested_frames(handle: DomainHandle, lines):  # noqa: F821
    frame = handle.push_frame("outer")
    try:
        for line in lines:
            inner = handle.push_frame("inner")
            try:
                inner.alloca(len(line))
            finally:
                handle.pop_frame(inner)
    finally:
        handle.pop_frame(frame)


class FacadeRuntime:
    """The runtime's enter/_leave split and the delegating facade."""

    def enter(self, udi):
        context = self.contexts.push(udi, 0, 0.0)
        try:
            self.work()
        finally:
            self._leave(context)

    def _leave(self, context):
        self.contexts.pop(context)

    def push_frame(self, name):
        # Ownership transfer: the caller receives the bracket obligation.
        return self._stack.push_frame(name)
