"""R2 near-misses mirroring ``apps/memcached_server.py`` idioms.

The deliberate E4 parser vulnerabilities — the strcpy-style key copy and
the declared-length heap allocation — must stay observable: sdradlint
checks *boundary* hygiene, not in-domain memory safety, so none of this
may be reported. Parsed, never imported.
"""


def parse_like_memcached(handle: DomainHandle, raw):  # noqa: F821
    declared = int(raw[:8])
    frame = handle.push_frame("process_command")
    try:
        # BUG 1 idiom (kept observable): strcpy into a fixed stack buffer.
        key_buf = frame.alloca(256)
        frame.write_buffer(key_buf, raw + b"\x00")
        # BUG 2 idiom (kept observable): allocation sized by the declared
        # length, filled with the actual payload.
        value_buf = handle.malloc(max(declared, 1))
        handle.store(value_buf, raw)
        # Materialisation is the sanctioned way out of the domain.
        value = bytes(handle.load_view(value_buf, min(declared, len(raw))))
        handle.free(value_buf)
        return ParsedOp(value=value)  # noqa: F821
    finally:
        handle.pop_frame(frame)


def copying_reader_is_clean(handle: DomainHandle, raw):  # noqa: F821
    buf = handle.malloc(len(raw))
    handle.store(buf, raw)
    pixels = handle.load(buf, len(raw))  # copying read: already trusted
    handle.free(buf)
    return {"pixels": bytes(pixels), "size": len(raw)}


def marshalled_result_is_clean(handle: DomainHandle, value):  # noqa: F821
    return marshal_result(runtime, udi, serializer, value, None)  # noqa: F821


def local_container_is_clean(handle: DomainHandle, raw):  # noqa: F821
    staging = {}
    view = handle.load_view(0, 16)
    staging["view"] = view  # local dict: stays inside the domain body
    return bytes(staging["view"])
