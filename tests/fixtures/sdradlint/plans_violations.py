"""Planted violations around compiled access plans. Parsed, never imported.

A plan captures raw memoryviews of the run it was compiled over, so
letting one (or its zero-copy ``view`` accessor's result) escape a domain
body is a live alias into pages the rewind will discard (R2); and a
generated closure that captures a PKRU write escapes the gate it was
compiled inside — a callable WRPKRU gadget even though the factory
invoked it once behind the bracket (R4).
"""


def leak_plan_from_domain_body(handle: DomainHandle):  # noqa: F821
    plan = handle._heap_plan()
    return plan  # expect[R2]


def leak_plan_view(handle: DomainHandle, addr):  # noqa: F821
    plan = handle._heap_plan()
    return plan.view(addr, 64)  # expect[R2]


def leak_cached_plan_attribute(handle: DomainHandle, out):  # noqa: F821
    out["plan"] = handle._plan  # expect[R2]


class TicketCacheWithReplayClosure:
    def prime(self, domain):
        saved = self.space.pkru.snapshot()
        context = self.contexts.push(domain.udi, saved, 0.0)

        def replay():
            self.space.pkru.write_prepared(domain.entry_pkru, 1)  # expect[R4]

        replay()  # warmed once inside the gate...
        self.contexts.pop(context)
        self.space.pkru.write(saved)
        # ...but the closure escapes the bracket: whoever calls it later
        # replays a WRPKRU with no gate around it.
        self.tickets[domain.udi] = replay
