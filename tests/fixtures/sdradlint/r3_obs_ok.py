"""R3 near-misses: the repro.obs span/metric surface is rewind-safe.

Spans land in a trusted-side buffer and metric counters are monotone
aggregates, so recording them from a domain body leaves no half-completed
state behind a rewind. Parsed, never imported.
"""


def observed_parser(handle: DomainHandle, raw, obs):  # noqa: F821
    handle.charge(1e-6)
    span = obs.start_span("parse", size=len(raw))
    obs.registry.counter("parses_total").increment()
    total = 0
    for byte in raw:
        total += byte
    span.set_attrs(checksum=total)
    obs.end_span(span, status="ok")
    return total


def metric_heavy_body(handle: DomainHandle, raw, obs):  # noqa: F821
    obs.event("body.entered", size=len(raw))
    obs.record_request("fixture", 1e-6, status="ok")
    obs.registry.histogram("body_bytes").observe(len(raw))
    obs.registry.gauge("body_depth").set(1)
    buf = handle.malloc(max(len(raw), 1))
    handle.store(buf, raw)
    return handle.load(buf, len(raw))
