"""R4 near-misses, SFI backend: mask setup inside the entry gate.

The SFI substrate has no hardware register switch — its "gate write" is
the mask/grant-set setup that decides which tags the inlined address
checks accept. Those writes are exactly as privileged as a WRPKRU and
must sit behind the same contexts.push/pop bracket. Parsed, never
imported.
"""


class SfiGatedRuntime:
    def execute(self, domain):
        saved = self.space.mask_gate.snapshot()
        context = self.contexts.push(domain.udi, saved, 0.0)
        # Reset the mask set, then admit this domain's tag.
        self.space.mask_gate.close_all()
        self.setup_domain_mask(domain)
        self.space.mask_gate.write_prepared(saved, 2)
        self.contexts.pop(context)
        self.space.mask_gate.write(saved)

    def setup_domain_mask(self, domain):
        # Only reachable from the gate above: guarded by closure.
        self.space.mask_gate.grant(domain.pkey, read=True, write=True)


class SfiMaskGate:
    def admit_inside_gate(self, tag):
        # The gate's own micro-op IS the mask update, not a call site.
        self._gate.write(tag)


def audited_mask_restore(space, saved):  # sdradlint: gate
    space.mask_gate.write(saved)
