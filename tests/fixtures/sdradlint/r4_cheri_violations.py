"""Planted R4 violations, CHERI backend: capability installs outside the
entry gate — the capability-forgery analogue of a stray WRPKRU gadget.

Parsed, never imported.
"""


def forge_capability(runtime, tag):
    runtime.space.cap_gate.grant(tag, read=True, write=True)  # expect[R4]


def sneak_cap_write(space, value):
    space.cap_gate.write(value)  # expect[R4]


class LeakyCheriRuntime:
    def premature_seal(self, domain):
        # Sealing before the sigsetjmp analogue: a fault between the two
        # would rewind into a world with no installed capabilities.
        self.space.cap_gate.close_all()  # expect[R4]
        context = self.contexts.push(domain.udi, 0, 0.0)
        self.contexts.pop(context)
