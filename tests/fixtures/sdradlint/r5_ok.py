"""R5 near-misses: helpers that handle domain memory correctly.

Same shapes as the planted violations — helper returns, out-params,
helper sinks — but every boundary crossing materialises or copies, so
nothing may be reported. Parsed, never imported.
"""


def materialise(handle, offset):
    # The helper sanitizes before returning: callers get a trusted copy.
    return bytes(handle.load_view(offset, 64))


def read_copy(handle, offset):
    # Copying reader: never an alias in the first place.
    return handle.load(offset, 64)


def plant_copy(record, handle):
    # Out-param shape, but the planted value is materialised.
    record.cached = bytes(handle.load_view(0, 16))


def summarise_internally(handle):
    # The alias never leaves this frame: consumed by a sanitizer.
    view = handle.load_view(0, 128)
    return sum(view)


def safe_helper_return(handle: DomainHandle, request):  # noqa: F821
    data = materialise(handle, 0)
    return data


def safe_copy_return(handle: DomainHandle):  # noqa: F821
    return read_copy(handle, 8)


def safe_out_param(handle: DomainHandle, record):  # noqa: F821
    plant_copy(record, handle)
    return record.size


def safe_helper_use(handle: DomainHandle):  # noqa: F821
    return summarise_internally(handle)
