"""R4 near-misses, CHERI backend: capability installs inside the gate.

Mirrors the backend-generic runtime shape — the CHERI substrate's gate is
a :class:`CapabilityGate` whose installs (``grant``) and seals
(``close_all``) must sit behind the same contexts.push/pop bracket the
MPK WRPKRU sequence uses. Parsed, never imported.
"""


class CheriGatedRuntime:
    def execute(self, domain):
        saved = self.space.cap_gate.snapshot()
        context = self.contexts.push(domain.udi, saved, 0.0)
        # Seal every compartment, then install this domain's capability.
        self.space.cap_gate.close_all()
        self.install_domain_capability(domain)
        # Ticket replay of a previously derived grant set: behind the push.
        self.space.cap_gate.write_prepared(saved, 2)
        self.contexts.pop(context)
        self.space.cap_gate.write(saved)

    def install_domain_capability(self, domain):
        # Only reachable from the gate above: guarded by closure.
        self.space.cap_gate.grant(domain.pkey, read=True, write=True)


class CapabilityGate:
    def install_inside_gate(self, tag):
        # The gate's own micro-op IS the capability install instruction.
        self._gate.write(tag)


def audited_cap_restore(space, saved):  # sdradlint: gate
    space.cap_gate.write(saved)
