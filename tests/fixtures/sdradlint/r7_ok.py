"""R7 near-misses: sandbox entries that honour the boundary contract.

Fallbacks or retries declared, marshalling through the sanctioned
helpers, and handles that never escape — none of this may be reported.
Parsed, never imported.
"""


@sandboxed(fallback="cached-thumbnail")  # noqa: F821
def entry_with_fallback(payload):
    return transform(payload)  # noqa: F821


@sandboxed(retries=2)  # noqa: F821
def entry_with_retries(payload):
    return payload * 2


@sandboxed(fallback="degraded")  # noqa: F821
def entry_marshals(payload):
    # The sanctioned carrier, not the raw copy primitives.
    return marshal_result(runtime, udi, serializer, payload, None)  # noqa: F821


def _measure(h):
    # Receives the handle but returns a plain number.
    return int(h.frame_count) * 2


def handle_used_safely(handle, payload):
    buf = handle.malloc(len(payload))
    handle.store(buf, payload)
    out = bytes(handle.load(buf, len(payload)))
    handle.free(buf)
    return out


def handle_measured_safely(handle, payload):
    size = _measure(handle)
    return size


sandbox.sandboxed(  # noqa: F821
    handle_used_safely, wants_handle=True, fallback="degraded"
)
sandbox.sandboxed(  # noqa: F821
    handle_measured_safely, wants_handle=True, retries=3
)
