"""Planted R3 violations: ledger reads don't launder ledger mutation.

Reading the sustainability ledger from a domain body is sanctioned; any
call that *changes* it — rebinding its clock, resetting accumulators,
surgery on the entries list — is still telemetry-surface mutation a
rewind cannot undo. Parsed, never imported.
"""


def resets_ledger_state(handle: DomainHandle, ledger):  # noqa: F821
    ledger.reset()  # expect[R3]


def rebinds_ledger_clock(handle: DomainHandle, ledger, clock):  # noqa: F821
    ledger.bind_clock(clock)  # expect[R3]


def mutates_entries_cache(handle: DomainHandle, ledger):  # noqa: F821
    ledger.cache.clear()  # expect[R3]


def writes_through_registry(handle: DomainHandle, obs):  # noqa: F821
    obs.registry.unregister("app_requests_total")  # expect[R3]
