"""R3 near-misses: campaign ledger/registry *reads* are rewind-safe.

The PR 10 campaign loop folds per-round energy and carbon off the live
:class:`SustainabilityLedger` and reads metric values back out of the
registry. A read leaves no half-completed state behind a rewind, so the
whole read surface (``entries``, ``request_rate``, ``value``, ...) is
sanctioned alongside the span/metric write calls. Parsed, never imported.
"""


def folds_ledger_round(handle: DomainHandle, ledger):  # noqa: F821
    handle.charge(1e-6)
    if ledger.faults_observed() > 0 and ledger.requests_served() > 0:
        rewind_entry, restart_entry = ledger.entries()
        return rewind_entry.recovery_gco2e + restart_entry.recovery_gco2e
    return 0.0


def reads_request_rate(handle: DomainHandle, ledger, obs):  # noqa: F821
    rate = ledger.request_rate()
    obs.registry.gauge("campaign_request_rate").set(rate)
    return rate


def reads_metric_values(handle: DomainHandle, obs):  # noqa: F821
    served = obs.registry.counter("app_requests_total").value()
    latency = obs.registry.histogram("request_latency").mean()
    obs.record_request("campaign", latency, status="ok")
    return served


def mixes_reads_and_spans(handle: DomainHandle, raw, obs, ledger):  # noqa: F821
    span = obs.start_span("campaign.round", size=len(raw))
    buf = handle.malloc(max(len(raw), 1))
    handle.store(buf, raw)
    faults = ledger.faults_observed()
    span.set_attrs(faults=faults)
    obs.end_span(span, status="ok")
    return handle.load(buf, len(raw))
