"""Planted R3 violations on the obs surface: safe calls don't launder
unsafe ones.

The span/metric entry points are sanctioned, but reaching *around* them —
raw tracer writes via the obs object, buffer surgery, exporter I/O, clock
rebinding — is still telemetry the rewind model excludes. Parsed, never
imported.
"""


def sneaks_tracer_through_obs(handle: DomainHandle, raw, obs):  # noqa: F821
    obs.tracer.record(0.0, "domain.sneak")  # expect[R3]


def rewrites_span_buffer(handle: DomainHandle, obs):  # noqa: F821
    obs.buffer.clear()  # expect[R3]


def exports_from_domain(handle: DomainHandle, obs, path):  # noqa: F821
    obs.registry.snapshot_to(path)  # expect[R3]


def rebinds_obs_clock(handle: DomainHandle, obs, clock):  # noqa: F821
    obs.bind_clock(clock)  # expect[R3]


def still_flags_plain_telemetry(handle: DomainHandle, telemetry):  # noqa: F821
    telemetry.push({"rewinds": 0})  # expect[R3]
