"""Planted R1 violations: brackets that leak on some control-flow path.

This module is an sdradlint test fixture. It is parsed, never imported —
the undefined names are deliberate.
"""


def missing_pop(handle: DomainHandle, raw):  # noqa: F821
    frame = handle.push_frame("f")  # expect[R1]
    frame.alloca(64)


def pop_on_happy_path_only(handle: DomainHandle, raw):  # noqa: F821
    frame = handle.push_frame("g")  # expect[R1]
    try:
        frame.alloca(64)
        handle.pop_frame(frame)
    except Exception:
        pass  # the exceptional path leaks the frame


def early_return_skips_pop(handle: DomainHandle, raw):  # noqa: F821
    frame = handle.push_frame("h")  # expect[R1]
    if not raw:
        return None
    handle.pop_frame(frame)
    return raw


def discarded_frame(handle: DomainHandle):  # noqa: F821
    handle.push_frame("i")  # expect[R1]


def context_never_popped(runtime, udi):
    context = runtime.contexts.push(udi, 0, 0.0)  # expect[R1]
    runtime.do_work(context)
