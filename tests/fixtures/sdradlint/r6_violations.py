"""Planted R6 violations: MPK-only idioms without a capability guard.

None of these functions (or their callers) check what backend is active,
so a CHERI/SFI run would crash or mis-simulate. Parsed, never imported.
"""


def assume_sixteen_keys(limits):
    # Pkey-count assumption from an unguarded root.
    return NUM_PKEYS - limits.reserved  # noqa: F821  # expect[R6]


def build_mpk_register(space):
    # Direct construction of the MPK write surface.
    return PkruRegister(space)  # noqa: F821  # expect[R6]


def read_keyvirt_stats(runtime):
    # Key-virtualization is an MPK-backend capability.
    return runtime._keyvirt.stats()  # expect[R6]


def unguarded_root(space, mask):
    # Not a guard in sight: the poke below is reachable from here.
    return poke_gate(space, mask)


def poke_gate(space, mask):
    # Raw gate-state poke bypassing the write API.
    space.pkru._value = mask  # expect[R6]
    return mask
