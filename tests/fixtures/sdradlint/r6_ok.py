"""R6 near-misses: MPK idioms behind proper capability guards.

Every MPK-only reference here is either guarded (capability attribute,
isinstance, backend-name check, UnsupportedByBackend), only reachable
through a guarded caller, defined by the module itself, or inside a
backend implementation class. Parsed, never imported.
"""

LOCAL_LIMIT = 16


def guarded_by_capability(runtime, limits):
    if limits.supports_key_virtualization:
        return runtime._keyvirt.stats()
    return None


def guarded_by_isinstance(backend):
    if isinstance(backend, MpkBackend):  # noqa: F821
        return pkru_bits(1, access_disable=False, write_disable=True)  # noqa: F821
    return 0


def guarded_by_name_check(backend, space):
    if backend.name == "mpk":
        return _mpk_only_path(space)
    return None


def _mpk_only_path(space):
    # Unguarded itself, but every caller is guarded.
    return NUM_PKEYS  # noqa: F821


def guarded_by_raise(backend):
    if backend.name != "mpk":
        raise UnsupportedByBackend("key virtualization requires MPK")  # noqa: F821
    return VirtualKeyManager(backend)  # noqa: F821


def module_constant_is_fine():
    # LOCAL_LIMIT is this module's own symbol, not the MPK constant.
    return LOCAL_LIMIT


class TracingMpkBackend(IsolationBackend):  # noqa: F821
    """Backend implementations are the per-backend code: exempt."""

    def max_domains(self):
        return NUM_PKEYS - 1  # noqa: F821
