"""Access-plan idioms that must stay clean under all rules.

Mirrors ``repro.memory.plans`` and its consumers: a plan factory whose
generated accessor closures capture the space and a validity cell but
never touch the PKRU register (they guard on the cell instead), a gated
runtime that compiles plans inside the entry-gate bracket, and domain
bodies that move data across the boundary only through the plan's
*copying* accessors or an explicit ``bytes(...)``. Parsed, never
imported.
"""


def compile_checked_plan(space, base, length):
    # The plan-factory shape: closures read the register value and the
    # per-PKRU verdict dict, but a validity cell — not a PKRU write — is
    # what gates the fast path. All of them escape via plan attributes.
    cell = [True]
    tlb = space._tlb
    run = space._view[base : base + length]
    ro_run = run.toreadonly()
    compiled_under = space.pkru.value  # a read of WRPKRU state, not a write

    def is_valid():
        return cell[0] and space._tlb is tlb

    def load(addr, n):
        o = addr - base
        if cell[0] and space._tlb is tlb and 0 <= o <= o + n <= length:
            return bytes(ro_run[o : o + n])
        return space.load(addr, n)

    def store(addr, data):
        n = len(data)
        o = addr - base
        if cell[0] and space._tlb is tlb and 0 <= o <= o + n <= length:
            run[o : o + n] = data
            return
        space.store(addr, data)

    plan = AccessPlan()  # noqa: F821
    plan.pkru = compiled_under
    plan.is_valid = is_valid
    plan.load = load
    plan.store = store
    return plan


class GatedRuntimeWithPlans:
    def execute(self, domain, body):
        # Entry gate unchanged by plans: the marshalling fast path uses a
        # compiled plan *between* the bracketed PKRU writes.
        saved = self.space.pkru.snapshot()
        context = self.contexts.push(domain.udi, saved, 0.0)
        self.space.pkru.write_prepared(domain.entry_pkru, 2)
        plan = self.space.plans.kernel_plan(domain.heap_base, domain.heap_size)
        if plan is not None:
            plan.store(domain.heap_base, b"args")
        result = body(domain.handle)
        self.contexts.pop(context)
        self.space.pkru.write(saved)
        return result


def copies_through_plan(handle: DomainHandle, addr):  # noqa: F821
    # The plan's copying readers mirror handle.load: taint stops there.
    plan = handle._heap_plan()
    return plan.load(addr, 64)


def materialises_plan_view(handle: DomainHandle, addr):  # noqa: F821
    plan = handle._heap_plan()
    view = plan.view(addr, 32)
    return bytes(view)  # materialised before crossing the boundary


def unpacks_header_via_plan(handle: DomainHandle, st, addr):  # noqa: F821
    plan = handle._heap_plan()
    magic, size = plan.unpack_from(st, addr)
    return (magic, size)  # plain ints, not aliases
