"""Planted R3 violations: side effects a rewind cannot undo.

Every function is a domain body (DomainHandle first parameter). Parsed,
never imported.
"""

REQUEST_COUNTER = 0


def writes_a_file(handle: DomainHandle, raw):  # noqa: F821
    log = open("/tmp/parse.log", "w")  # expect[R3]
    log.write(str(raw))


def spawns_a_process(handle: DomainHandle, raw):  # noqa: F821
    subprocess.run(["touch", "/tmp/x"])  # expect[R3]  # noqa: F821


def prints_to_stdout(handle: DomainHandle, raw):  # noqa: F821
    print("parsed", raw)  # expect[R3]


def bumps_module_global(handle: DomainHandle, raw):  # noqa: F821
    global REQUEST_COUNTER
    REQUEST_COUNTER += 1  # expect[R3]


def sneaks_telemetry(handle: DomainHandle, tracer):  # noqa: F821
    tracer.record(0.0, "domain.sneak")  # expect[R3]


def mutates_caller_object(handle: DomainHandle, server, raw):  # noqa: F821
    server.requests = server.requests + 1  # expect[R3]
