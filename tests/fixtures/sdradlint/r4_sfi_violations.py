"""Planted R4 violations, SFI backend: mask setup outside the entry gate.

An unguarded mask write is the SFI equivalent of a WRPKRU gadget: code
that can widen the set of tags the inlined checks accept without going
through the sanctioned entry sequence. Parsed, never imported.
"""


def widen_mask(runtime, tag):
    runtime.space.mask_gate.grant(tag, read=True, write=True)  # expect[R4]


def sneak_mask_write(space, value):
    space.mask_gate.write(value)  # expect[R4]


class LeakySfiRuntime:
    def premature_mask_reset(self, domain):
        # Mask reset before the sigsetjmp analogue — same hazard as the
        # MPK premature write: nothing to restore on a fault in between.
        self.space.mask_gate.close_all()  # expect[R4]
        context = self.contexts.push(domain.udi, 0, 0.0)
        self.contexts.pop(context)
