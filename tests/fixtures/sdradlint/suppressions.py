"""Suppression fixtures: real violations hushed with ignore comments.

Parsed, never imported. The lint must report nothing here, but count two
suppressed findings.
"""


def hushed_line(handle: DomainHandle, raw):  # noqa: F821
    print("debug", raw)  # sdradlint: ignore[R3]


def hushed_whole_function(handle: DomainHandle, raw):  # sdradlint: ignore[R1]  # noqa: F821
    frame = handle.push_frame("x")
    frame.alloca(4)
