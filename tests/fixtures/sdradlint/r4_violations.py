"""Planted R4 violations: WRPKRU gadgets outside the entry gate.

Parsed, never imported.
"""


def sneak_grant(runtime, pkey):
    runtime.space.pkru.grant(pkey, read=True, write=True)  # expect[R4]


def sneak_raw_write(space):
    space.pkru.write(0)  # expect[R4]


class LeakyRuntime:
    def premature_write(self, domain):
        # The write precedes the sigsetjmp analogue: a fault between the
        # two would restore nothing.
        self.space.pkru.write(0)  # expect[R4]
        context = self.contexts.push(domain.udi, 0, 0.0)
        self.contexts.pop(context)
