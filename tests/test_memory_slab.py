"""Tests for the Memcached-style slab allocator."""

from __future__ import annotations

import pytest

from repro.errors import AllocationFailure, HeapCorruption, InvalidFree, SdradError
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE
from repro.memory.slab import (
    CHUNK_HEADER,
    SlabAllocator,
    default_size_classes,
)

ARENA = 1024 * 1024


@pytest.fixture
def space() -> AddressSpace:
    s = AddressSpace(size=2 * ARENA)
    s.page_table.map_range(0, 2 * ARENA, pkey=0)
    return s


@pytest.fixture
def slabs(space: AddressSpace) -> SlabAllocator:
    return SlabAllocator(space, 0, ARENA)


class TestSizeClasses:
    def test_default_ladder_is_geometric(self):
        classes = default_size_classes(64, 16 * 1024, 1.25)
        assert classes[0] == 64
        assert classes[-1] == 16 * 1024
        for small, large in zip(classes, classes[1:]):
            assert large > small

    def test_rejects_degenerate_growth(self):
        with pytest.raises(SdradError):
            default_size_classes(growth=1.0)

    def test_rejects_tiny_smallest(self):
        with pytest.raises(SdradError):
            default_size_classes(smallest=4)

    def test_class_for_picks_smallest_fitting(self, slabs: SlabAllocator):
        class_id = slabs.class_for(65)
        assert slabs.chunk_sizes[class_id] >= 65
        if class_id > 0:
            assert slabs.chunk_sizes[class_id - 1] < 65

    def test_oversized_object_rejected(self, slabs: SlabAllocator):
        with pytest.raises(AllocationFailure):
            slabs.class_for(slabs.chunk_sizes[-1] + 1)

    def test_largest_class_must_fit_slab_page(self, space):
        with pytest.raises(SdradError):
            SlabAllocator(space, 0, ARENA, chunk_sizes=[128 * 1024], slab_page_size=64 * 1024)


class TestAllocFree:
    def test_roundtrip(self, slabs: SlabAllocator, space):
        addr = slabs.alloc(100)
        space.store(addr, b"v" * 100)
        assert space.load(addr, 100) == b"v" * 100

    def test_capacity_meets_request(self, slabs: SlabAllocator):
        addr = slabs.alloc(100)
        assert slabs.chunk_capacity(addr) >= 100

    def test_free_recycles_chunk(self, slabs: SlabAllocator):
        addr = slabs.alloc(100)
        slabs.free(addr)
        again = slabs.alloc(100)
        assert again == addr

    def test_double_free_detected(self, slabs: SlabAllocator):
        addr = slabs.alloc(64)
        slabs.free(addr)
        with pytest.raises(InvalidFree):
            slabs.free(addr)

    def test_wild_free_detected(self, slabs: SlabAllocator):
        with pytest.raises(InvalidFree):
            slabs.free(99999)

    def test_zero_size_rejected(self, slabs: SlabAllocator):
        with pytest.raises(SdradError):
            slabs.alloc(0)

    def test_live_chunk_count(self, slabs: SlabAllocator):
        addrs = [slabs.alloc(64) for _ in range(5)]
        assert slabs.live_chunks == 5
        slabs.free(addrs[0])
        assert slabs.live_chunks == 4

    def test_arena_exhaustion(self, space):
        small = SlabAllocator(space, 0, 128 * 1024, slab_page_size=64 * 1024)
        with pytest.raises(AllocationFailure):
            for _ in range(10000):
                small.alloc(1024)


class TestCorruption:
    def test_smashed_chunk_header_detected(self, slabs: SlabAllocator, space):
        a = slabs.alloc(64)
        b = slabs.alloc(64)
        # chunks in the same class are adjacent: overflowing the lower one
        # reaches the higher one's header
        lower, higher = min(a, b), max(a, b)
        capacity = slabs.chunk_capacity(lower)
        assert higher == lower + capacity + CHUNK_HEADER
        space.store(lower, b"X" * (capacity + CHUNK_HEADER))
        with pytest.raises(HeapCorruption):
            slabs.free(higher)

    def test_sweep_detects_smashed_header(self, slabs: SlabAllocator, space):
        a = slabs.alloc(64)
        b = slabs.alloc(64)
        lower = min(a, b)
        capacity = slabs.chunk_capacity(lower)
        space.store(lower, b"X" * (capacity + CHUNK_HEADER))
        with pytest.raises(HeapCorruption):
            slabs.check()

    def test_clean_sweep_passes(self, slabs: SlabAllocator):
        for _ in range(10):
            slabs.alloc(64)
        slabs.check()


class TestAccounting:
    def test_resident_bytes_grows_by_slab_pages(self, slabs: SlabAllocator):
        assert slabs.resident_bytes() == 0
        slabs.alloc(64)
        assert slabs.resident_bytes() == slabs.slab_page_size
        # same class: second alloc reuses the page
        slabs.alloc(64)
        assert slabs.resident_bytes() == slabs.slab_page_size
        # different class: new page
        slabs.alloc(8192)
        assert slabs.resident_bytes() == 2 * slabs.slab_page_size

    def test_stats_per_class(self, slabs: SlabAllocator):
        slabs.alloc(64)
        slabs.alloc(64)
        stats = slabs.stats()
        used = [s for s in stats if s.used_chunks]
        assert len(used) == 1
        assert used[0].used_chunks == 2
        assert used[0].slab_pages == 1

    def test_reset_clears_everything(self, slabs: SlabAllocator):
        for _ in range(10):
            slabs.alloc(256)
        slabs.reset()
        assert slabs.live_chunks == 0
        assert slabs.resident_bytes() == 0
        slabs.alloc(256)  # usable again

    def test_alloc_free_counters(self, slabs: SlabAllocator):
        a = slabs.alloc(64)
        slabs.alloc(64)
        slabs.free(a)
        assert slabs.total_allocs == 2
        assert slabs.total_frees == 1
