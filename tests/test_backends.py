"""Backend-equivalence suite: MPK, simulated CHERI and SFI substrates.

The SDRaD protocol is substrate-independent; these tests pin that down by
running the same containment, rewind and re-entry scenarios on every
registered :class:`~repro.memory.backends.IsolationBackend` and demanding
identical observable behaviour — plus the per-substrate specifics: MPK
bit-identity with the pre-backend tree, CHERI's unbounded domain scale,
SFI's per-access tax shape, and loud rejection of MPK-only APIs.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    OutOfDomains,
    ProtectionKeyViolation,
    SdradError,
    UnsupportedByBackend,
)
from repro.memory import GrantSetGate, TagAllocator, available_backends
from repro.memory.address_space import AddressSpace
from repro.sdrad.constants import DomainFlags
from repro.sdrad.keyvirt import VirtualKeyManager
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import consistency_check, snapshot
from repro.sim.cost import DEFAULT_COST_MODEL

ALL_BACKENDS = available_backends()


def plant_secret(h):
    addr = h.malloc(16)
    h.store(addr, b"victim secret")
    return addr


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestContainmentEquivalence:
    """E4's containment claim must hold on every substrate."""

    def test_cross_domain_store_contained(self, backend):
        runtime = SdradRuntime(backend=backend)
        victim = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        attacker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        secret_addr = runtime.execute(victim.udi, plant_secret).value

        attack = runtime.execute(
            attacker.udi, lambda h: h.space.store(secret_addr, b"overwrite")
        )
        assert not attack.ok
        assert attack.fault.mechanism.value == "pkey-violation"

        intact = runtime.execute(
            victim.udi, lambda h: bytes(h.load(secret_addr, 13))
        )
        assert intact.value == b"victim secret"
        alive = runtime.execute(attacker.udi, lambda h: "alive")
        assert alive.value == "alive"
        assert consistency_check(runtime) == []

    def test_cross_domain_load_denied_too(self, backend):
        runtime = SdradRuntime(backend=backend)
        victim = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        spy = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        secret_addr = runtime.execute(victim.udi, plant_secret).value

        leak = runtime.execute(
            spy.udi, lambda h: h.space.load(secret_addr, 13)
        )
        assert not leak.ok
        assert leak.fault.mechanism.value == "pkey-violation"

    def test_violation_classifies_through_pkey_taxonomy(self, backend):
        # Detection/recovery key on ProtectionKeyViolation; every
        # substrate's fault must be a subclass carrying the denied tag.
        space = AddressSpace(size=1024 * 1024, backend=backend)
        tag = space.tags.alloc()
        space.page_table.map_range(0, 4096, pkey=tag)
        with pytest.raises(ProtectionKeyViolation) as exc:
            space.store(0, b"x")
        assert exc.value.pkey == tag
        assert exc.value.address == 0


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestRewindEquivalence:
    def test_rewind_discards_partial_writes(self, backend):
        runtime = SdradRuntime(backend=backend)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        addr = runtime.execute(domain.udi, plant_secret).value

        def corrupt_then_escape(h):
            h.store(addr, b"half-done state")
            h.space.store(0, b"!")  # faults: null page is kernel-owned

        result = runtime.execute(domain.udi, corrupt_then_escape)
        assert not result.ok
        assert result.recovery_time == pytest.approx(runtime.cost.rewind)

        # The rewind discarded the domain heap: re-running the init path
        # hands out the same address with fresh contents.
        again = runtime.execute(domain.udi, plant_secret)
        assert again.ok
        assert again.value == addr
        assert consistency_check(runtime) == []

    def test_reentry_cache_invariants(self, backend):
        # Ticket replay must behave identically on every substrate: same
        # hit counts, same results, books balanced.
        runtime = SdradRuntime(backend=backend)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        values = [
            runtime.execute(domain.udi, lambda h, i=i: i * 2).value
            for i in range(10)
        ]
        assert values == [i * 2 for i in range(10)]
        assert runtime.reentry_hits == 9
        assert runtime.reentry_misses == 1
        assert consistency_check(runtime) == []

    def test_gate_restored_after_exit(self, backend):
        runtime = SdradRuntime(backend=backend)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        before = runtime.space.gate.value
        runtime.execute(domain.udi, lambda h: None)
        assert runtime.space.gate.value == before


class TestMpkBitIdentity:
    """backend="mpk" (the default) must be the pre-backend tree, bit for bit."""

    @staticmethod
    def _workload(runtime):
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, plant_secret)
        runtime.execute(domain.udi, lambda h: h.space.store(0, b"!"))
        runtime.execute(domain.udi, lambda h: "alive")
        runtime.domain_destroy(domain.udi)

    def test_default_and_explicit_mpk_identical(self):
        implicit = SdradRuntime()
        explicit = SdradRuntime(backend="mpk")
        self._workload(implicit)
        self._workload(explicit)
        assert snapshot(implicit) == snapshot(explicit)
        assert implicit.clock.now == explicit.clock.now
        assert implicit.space.gate.writes == explicit.space.gate.writes

    def test_default_backend_is_mpk(self):
        runtime = SdradRuntime()
        assert runtime.backend.name == "mpk"
        assert runtime.space.backend.name == "mpk"

    def test_snapshot_carries_backend_and_gate_alias(self):
        runtime = SdradRuntime()
        memory = snapshot(runtime)["memory"]
        assert memory["backend"] == "mpk"
        assert memory["gate_writes"] == memory["wrpkru_writes"]


class TestCheriScale:
    def test_thousand_domains(self):
        # The whole point of leaving MPK: no 16-key ceiling. 1000 live
        # domains, each with its own tag, and the last one still executes.
        runtime = SdradRuntime(
            space=AddressSpace(size=64 * 1024 * 1024, backend="cheri")
        )
        domains = [
            runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=4096,
                stack_size=4096,
            )
            for _ in range(1000)
        ]
        tags = {d.pkey for d in domains}
        assert len(tags) == 1000
        result = runtime.execute(domains[-1].udi, lambda h: h.malloc(64))
        assert result.ok
        assert consistency_check(runtime) == []

    def test_mpk_still_capped(self):
        runtime = SdradRuntime()
        for _ in range(15):
            runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        with pytest.raises(OutOfDomains):
            runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)


@pytest.mark.parametrize("backend", ["cheri", "sfi"])
class TestKeyvirtRejection:
    def test_runtime_kwarg_rejected(self, backend):
        with pytest.raises(UnsupportedByBackend, match="key-scarce"):
            SdradRuntime(backend=backend, key_virtualization=True)

    def test_direct_manager_rejected(self, backend):
        runtime = SdradRuntime(backend=backend)
        with pytest.raises(UnsupportedByBackend, match=backend):
            VirtualKeyManager(runtime)


class TestSfiCostShape:
    def test_access_tax_scales_with_checked_accesses(self):
        # SFI has no gate cost but pays per checked access; the clock
        # charge for a domain call must grow by exactly sfi_access_check
        # per extra load.
        def run(n):
            runtime = SdradRuntime(backend="sfi")
            domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

            def touch(h):
                addr = h.malloc(8)
                for _ in range(n):
                    h.load(addr, 8)

            runtime.execute(domain.udi, touch)
            return runtime.clock.now

        tax = DEFAULT_COST_MODEL.sfi_access_check
        delta = run(200) - run(100)
        assert delta == pytest.approx(100 * tax)

    def test_no_gate_cost_on_entry(self):
        sfi = SdradRuntime(backend="sfi")
        assert sfi.backend.entry_cost(sfi.cost) == 0.0
        assert sfi.backend.exit_cost(sfi.cost) == 0.0
        assert sfi.backend.access_tax(sfi.cost) > 0.0

    def test_mpk_pays_no_access_tax(self):
        mpk = SdradRuntime()
        assert mpk.backend.access_tax(mpk.cost) == 0.0
        assert mpk.backend.entry_cost(mpk.cost) > 0.0


class TestGrantSetGate:
    def test_unforgeable_values(self):
        gate = GrantSetGate()
        with pytest.raises(SdradError, match="unforgeable"):
            gate.write(17)
        with pytest.raises(SdradError, match="unforgeable"):
            gate.write_prepared(17, 2)

    def test_derived_values_replay(self):
        gate = GrantSetGate()
        base = gate.snapshot()
        gate.grant(5, read=True, write=True)
        granted = gate.value
        assert gate.allows_write(5)
        gate.write(base)
        assert not gate.allows_read(5)
        gate.write(granted)  # previously derived: fine
        assert gate.allows_write(5)

    def test_interning_is_stable(self):
        # The same grant set, re-derived, interns to the same value — the
        # software TLB and entry tickets key on this.
        gate = GrantSetGate()
        base = gate.snapshot()
        gate.grant(3, read=True, write=False)
        first = gate.value
        gate.write(base)
        gate.grant(3, read=True, write=False)
        assert gate.value == first

    def test_writes_counter_and_hook(self):
        gate = GrantSetGate()
        seen = []
        gate.on_write = seen.append
        gate.grant(2)
        gate.close_all()
        gate.write_prepared(gate.snapshot(), 3)
        assert gate.writes == 5  # 1 grant + 1 close + 3 modelled
        assert len(seen) == 3  # the hook fires once per actual write


class TestTagAllocator:
    def test_lowest_free_first_and_recycling(self):
        alloc = TagAllocator()
        first, second, third = alloc.alloc(), alloc.alloc(), alloc.alloc()
        assert (first, second, third) == (1, 2, 3)
        freed = []
        alloc.on_free = freed.append
        alloc.free(second)
        assert freed == [second]
        assert alloc.alloc() == second  # lowest free tag comes back first

    def test_default_tag_protected(self):
        alloc = TagAllocator()
        with pytest.raises(SdradError):
            alloc.free(0)

    def test_bounded_ceiling(self):
        alloc = TagAllocator(max_tags=3)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(OutOfDomains):
            alloc.alloc()
