# Test package for the SDRaD reproduction.
