"""Tests for error budgets (the operational view of E3)."""

from __future__ import annotations

import math

import pytest

from repro.resilience.budget import ErrorBudget
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import DAYS, MINUTES, YEARS
from repro.sim.cost import GIB

MODEL = RecoveryStrategyModel()


class TestBudgetArithmetic:
    def test_five_nines_budget_total(self):
        budget = ErrorBudget(0.99999)
        assert budget.total == pytest.approx(315.36, abs=0.01)

    def test_spending(self):
        budget = ErrorBudget(0.99999)
        budget.spend(1000.0, 100.0, cause="restart")
        assert budget.spent == 100.0
        assert budget.remaining == pytest.approx(budget.total - 100.0)
        assert not budget.exhausted

    def test_exhaustion(self):
        budget = ErrorBudget(0.99999)
        budget.spend(0.0, 400.0, cause="incident")
        assert budget.exhausted
        assert budget.remaining == 0.0

    def test_validation(self):
        budget = ErrorBudget(0.99999)
        with pytest.raises(ValueError):
            budget.spend(0.0, -1.0)
        with pytest.raises(ValueError):
            budget.spend(-1.0, 1.0)
        with pytest.raises(ValueError):
            budget.burn_rate(0.0)

    def test_spend_by_cause(self):
        budget = ErrorBudget(0.999)
        budget.spend(0.0, 10.0, cause="restart")
        budget.spend(1.0, 5.0, cause="restart")
        budget.spend(2.0, 1.0, cause="deploy")
        assert budget.spend_by_cause() == {"restart": 15.0, "deploy": 1.0}


class TestBurnRate:
    def test_on_pace_burn_rate_is_one(self):
        budget = ErrorBudget(0.99999, horizon=YEARS)
        # half the budget spent at half the horizon
        budget.spend(0.0, budget.total / 2)
        assert budget.burn_rate(YEARS / 2) == pytest.approx(1.0)

    def test_fast_burn(self):
        budget = ErrorBudget(0.99999, horizon=YEARS)
        budget.spend(0.0, budget.total / 2)
        assert budget.burn_rate(YEARS / 10) == pytest.approx(5.0)

    def test_no_spend_no_burn(self):
        budget = ErrorBudget(0.99999)
        assert budget.burn_rate(DAYS) == 0.0
        assert math.isinf(budget.projected_breach_time(DAYS))

    def test_projected_breach(self):
        budget = ErrorBudget(0.99999, horizon=YEARS)
        # one restart per month at ~115 s each
        restart = MODEL.process_restart(10 * GIB).downtime_per_fault
        now = 30 * DAYS
        budget.spend(now / 2, restart)
        breach = budget.projected_breach_time(now)
        # ~115 s/month on a 315 s budget: breach within the year
        assert now < breach < YEARS


class TestPaperFraming:
    def test_one_restart_spends_a_third_of_the_budget(self):
        budget = ErrorBudget(0.99999)
        restart = MODEL.process_restart(10 * GIB).downtime_per_fault
        budget.spend(0.0, restart, cause="memory fault -> restart")
        assert 0.30 < budget.spent_fraction < 0.45

    def test_three_restarts_breach(self):
        budget = ErrorBudget(0.99999)
        restart = MODEL.process_restart(10 * GIB).downtime_per_fault
        for i in range(3):
            budget.spend(i * 1000.0, restart)
        assert budget.exhausted

    def test_faults_until_breach(self):
        budget = ErrorBudget(0.99999)
        restart = MODEL.process_restart(10 * GIB).downtime_per_fault
        assert 2.0 < budget.faults_until_breach(restart) < 3.0
        assert budget.faults_until_breach(3.5e-6) > 9e7
        assert math.isinf(budget.faults_until_breach(0.0))

    def test_rewinds_never_matter(self):
        budget = ErrorBudget(0.99999)
        for i in range(10_000):
            budget.spend(float(i), 3.5e-6, cause="rewind")
        assert budget.spent_fraction < 0.001
