"""Failure-path span trees: the cases that historically orphan spans.

Each test drives an ugly path — repeated faults under a retry policy, a
poisoned request inside a batch, a watchdog quarantine, a worker process
crash — and demands a well-formed span tree afterwards: every span closed,
every parent link valid, metrics in agreement with the tracer.
"""

from __future__ import annotations

import pytest

from repro.apps.cluster import NginxCluster
from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.obs import Observability
from repro.sdrad.constants import DomainFlags
from repro.sdrad.policy import ProcessCrashed, RetryPolicy
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import consistency_check
from repro.sdrad.watchdog import FaultWatchdog, WatchdogConfig

ATTACK_LONG_KEY = b"get " + b"K" * 270 + b"\r\n"
NGINX_ATTACK = b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\nHost: h\r\n\r\n"


def observed_runtime() -> SdradRuntime:
    return SdradRuntime(obs=Observability())


def smash(handle):
    frame = handle.push_frame("victim")
    buf = frame.alloca(32)
    frame.write_buffer(buf, b"A" * 128)  # canary smash


class TestRepeatedFaultsUnderRetry:
    def test_each_attempt_gets_fault_and_rewind_events(self):
        runtime = observed_runtime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        result = runtime.execute(
            domain.udi, smash, policy=RetryPolicy(max_retries=1)
        )
        assert not result.ok

        buf = runtime.obs.buffer
        [execute] = buf.of_name("domain.execute")
        assert execute.status == "fault"
        assert execute.attrs["retries"] == 1
        faults = buf.of_name("domain.fault")
        rewinds = buf.of_name("domain.rewind")
        assert len(faults) == len(rewinds) == 2  # first attempt + one retry
        for span in faults + rewinds:
            assert span.parent_id == execute.span_id
        assert [f.attrs["attempt"] for f in faults] == [1, 2]
        assert runtime.obs.open_span_count == 0
        assert buf.tree_violations() == []
        assert consistency_check(runtime) == []


class TestPoisonedBatch:
    def test_partial_batch_counts_each_request_once(self):
        runtime = observed_runtime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c0")
        batch = [
            b"set a 0 0 2\r\nxy\r\n",
            ATTACK_LONG_KEY,
            b"get a\r\n",
        ]
        responses = server.handle_batch("c0", batch)
        assert len(responses) == 3
        assert responses[1].startswith(b"SERVER_ERROR")

        obs = runtime.obs
        [batch_span] = obs.buffer.of_name("memcached.batch")
        assert batch_span.status == "partial"
        assert batch_span.attrs["size"] == 3
        # Exactly one request counter bump per pipelined request — the
        # fallback path must not route through the instrumented wrapper.
        assert obs.registry.counter_total("app_requests_total") == 3
        assert obs.registry.counter_total("app_requests_total", status="fault") == 1
        assert obs.registry.counter_total("app_batches_total") == 1
        # The domain executions of the fallback nest under the batch span.
        executes = obs.buffer.of_name("domain.execute")
        assert executes and all(
            e.parent_id == batch_span.span_id for e in executes
        )
        assert obs.open_span_count == 0
        assert obs.buffer.tree_violations() == []
        assert consistency_check(runtime) == []

    def test_batch_latency_share_sums_to_elapsed(self):
        runtime = observed_runtime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c0")
        before = runtime.clock.now
        server.handle_batch("c0", [b"set k 0 0 1\r\nv\r\n", b"get k\r\n"])
        elapsed = runtime.clock.now - before
        hist = runtime.obs.registry.histogram(
            "app_request_latency_seconds", app="memcached"
        )
        assert hist.sum == pytest.approx(elapsed)


class TestWatchdogQuarantine:
    def test_quarantine_emits_event_and_refusals(self):
        runtime = observed_runtime()
        obs = runtime.obs
        watchdog = FaultWatchdog(
            runtime.clock,
            WatchdogConfig(threshold=2, window=60.0, quarantine_period=5.0),
            obs=obs,
        )
        server = MemcachedServer(
            runtime, isolation=IsolationMode.PER_CONNECTION, watchdog=watchdog
        )
        server.connect("mallory")
        server.handle("mallory", ATTACK_LONG_KEY)
        server.handle("mallory", ATTACK_LONG_KEY)  # trips the threshold
        refused = server.handle("mallory", b"get x\r\n")
        assert refused.startswith(b"SERVER_ERROR")

        [quarantine] = obs.buffer.of_name("watchdog.quarantine")
        assert quarantine.attrs["principal"] == "mallory"
        assert quarantine.attrs["duration"] == pytest.approx(5.0)
        assert obs.registry.counter_total("watchdog_quarantines_total") == 1
        assert obs.registry.counter_total("watchdog_faults_total") == 2
        assert obs.registry.gauge_value("watchdog_quarantined_principals") == 1
        assert obs.registry.counter_total(
            "app_requests_total", status="refused"
        ) == 1
        assert obs.open_span_count == 0
        assert obs.buffer.tree_violations() == []
        assert consistency_check(runtime) == []


class TestWorkerCrashRestart:
    def test_restart_event_and_wellformed_tree(self):
        obs = Observability()
        cluster = NginxCluster(workers=2, isolation=IsolationMode.NONE, obs=obs)
        cluster.connect("c0")
        response = cluster.handle("c0", NGINX_ATTACK)
        assert response.startswith(b"HTTP/1.1 502 ")

        [restart] = obs.buffer.of_name("worker.restart")
        assert restart.attrs["cause"] == "process-crash"
        assert restart.attrs["duration"] > 0.0
        [request_span] = obs.buffer.of_name("cluster.request")
        assert request_span.status == "worker-crash"
        assert restart.parent_id == request_span.span_id
        assert obs.registry.counter_total("cluster_worker_restarts_total") == 1
        assert obs.registry.counter_total(
            "cluster_requests_total", status="worker-crash"
        ) == 1
        assert obs.open_span_count == 0
        assert obs.buffer.tree_violations() == []
        # While the worker restarts, its clients are refused — also spanned.
        refused = cluster.handle("c0", b"GET / HTTP/1.1\r\nHost: h\r\n\r\n")
        assert refused.startswith(b"HTTP/1.1 503 ")
        assert obs.registry.counter_total(
            "cluster_requests_total", status="refused"
        ) == 1

    def test_uncontained_crash_closes_span_as_crash(self):
        runtime = observed_runtime()
        server = MemcachedServer(runtime, isolation=IsolationMode.NONE)
        server.connect("mallory")
        with pytest.raises(ProcessCrashed):
            server.handle("mallory", ATTACK_LONG_KEY)
        obs = runtime.obs
        [request_span] = obs.buffer.of_name("memcached.request")
        assert request_span.status == "crash"
        assert obs.registry.counter_total(
            "app_requests_total", status="crash"
        ) == 1
        assert obs.registry.counter_total("sdrad_crashes_total") == 1
        assert obs.open_span_count == 0
        assert obs.buffer.tree_violations() == []
