"""Tests for counters, gauges and histograms."""

from __future__ import annotations

import pytest

from repro.sim.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g", initial=10)
        gauge.add(-3)
        assert gauge.value == 7
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_empty_summary_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").summary()

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(50)

    def test_single_sample(self):
        h = Histogram("h")
        h.observe(4.2)
        summary = h.summary()
        assert summary.count == 1
        assert summary.mean == pytest.approx(4.2)
        assert summary.stdev == 0.0
        assert summary.p50 == pytest.approx(4.2)

    def test_mean_and_stdev(self):
        h = Histogram("h")
        h.observe_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        summary = h.summary()
        assert summary.mean == pytest.approx(5.0)
        assert summary.stdev == pytest.approx(2.138, abs=1e-3)

    def test_percentiles_exact(self):
        h = Histogram("h")
        h.observe_many(range(1, 101))  # 1..100
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert h.percentile(50) == pytest.approx(50.5)

    def test_percentile_interpolation(self):
        h = Histogram("h")
        h.observe_many([10.0, 20.0])
        assert h.percentile(50) == pytest.approx(15.0)
        assert h.percentile(25) == pytest.approx(12.5)

    def test_percentile_bounds_checked(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_min_max(self):
        h = Histogram("h")
        h.observe_many([3.0, -1.0, 7.5])
        summary = h.summary()
        assert summary.minimum == -1.0
        assert summary.maximum == 7.5

    def test_p99_close_to_max_for_uniform(self):
        h = Histogram("h")
        h.observe_many(range(1000))
        assert h.percentile(99) == pytest.approx(989.01, abs=0.5)


class TestMetricsRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert registry.gauge("c") is registry.gauge("c")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("reqs").increment(3)
        registry.gauge("live").set(2)
        registry.histogram("lat").observe(1.0)
        registry.histogram("empty")
        snap = registry.snapshot()
        assert snap["counter/reqs"] == 3
        assert snap["gauge/live"] == 2
        assert snap["histogram/lat"]["count"] == 1
        assert snap["histogram/empty"] == {"count": 0}
