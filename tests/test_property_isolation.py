"""Property-based tests of the isolation invariant itself.

The load-bearing property of the whole reproduction: *no checked access
issued from inside a domain can modify memory outside that domain's
protection key* — for any address and any payload.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory.snapshot import capture
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime
from repro.sim.rng import zipf_weights


def build_runtime() -> tuple[SdradRuntime, int, int]:
    runtime = SdradRuntime()
    attacker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    victim = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    runtime.execute(victim.udi, lambda h: h.store(h.malloc(64), b"V" * 64))
    return runtime, attacker.udi, victim.udi


@settings(max_examples=80, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=2 * 1024 * 1024),
    payload=st.binary(min_size=1, max_size=64),
)
def test_wild_write_never_escapes_the_domain(offset, payload):
    runtime, attacker_udi, victim_udi = build_runtime()
    attacker = runtime.domain(attacker_udi)
    victim = runtime.domain(victim_udi)
    target = offset % runtime.space.size

    victim_snap = capture(runtime.space, victim.heap_base, victim.heap_size)
    root_snap = capture(runtime.space, runtime.root.heap_base, 4096)

    result = runtime.execute(attacker_udi, lambda h: h.store(target, payload))

    in_attacker = (
        attacker.heap_base <= target
        and target + len(payload) <= attacker.heap_base + attacker.heap_size
    ) or (
        attacker.stack_base <= target
        and target + len(payload) <= attacker.stack_base + attacker.stack_size
    )
    if result.ok:
        # a successful store must have been entirely inside the attacker's
        # own regions
        assert in_attacker
    # regardless of outcome, victim and root memory are byte-identical
    assert capture(runtime.space, victim.heap_base, victim.heap_size).data == victim_snap.data
    assert capture(runtime.space, runtime.root.heap_base, 4096).data == root_snap.data


@settings(max_examples=80, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=2 * 1024 * 1024),
    length=st.integers(min_value=1, max_value=4096),
)
def test_wild_read_never_returns_foreign_bytes(offset, length):
    """Reads either stay inside the domain or fault — no cross-key leaks."""
    runtime, attacker_udi, victim_udi = build_runtime()
    attacker = runtime.domain(attacker_udi)
    target = offset % runtime.space.size

    result = runtime.execute(attacker_udi, lambda h: h.load(target, length))
    if result.ok:
        start_ok = (
            attacker.heap_base <= target < attacker.heap_base + attacker.heap_size
        ) or (
            attacker.stack_base <= target < attacker.stack_base + attacker.stack_size
        )
        assert start_ok


@settings(max_examples=50, deadline=None)
@given(data=st.binary(min_size=1, max_size=256))
def test_rewind_always_restores_a_working_domain(data):
    """After any faulting input, the domain accepts the next request."""
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

    def risky(handle):
        addr = handle.malloc(8)
        handle.store(addr, data)  # overflows for len(data) > capacity
        handle.free(addr)
        return True

    runtime.execute(domain.udi, risky)  # may fault, may not
    assert runtime.execute(domain.udi, lambda h: "ok").value == "ok"
    domain.heap.check()


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    skew=st.floats(min_value=0.0, max_value=3.0),
)
def test_zipf_weights_always_a_distribution(n, skew):
    weights = zipf_weights(n, skew)
    assert len(weights) == n
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(w > 0 for w in weights)
    assert all(a >= b for a, b in zip(weights, weights[1:]))


@settings(max_examples=60, deadline=None)
@given(payload=st.binary(max_size=512))
def test_memcached_server_never_crashes_when_isolated(payload):
    """Fuzz the whole server: arbitrary bytes must never escape containment."""
    from repro.apps.memcached_server import MemcachedServer

    runtime = SdradRuntime()
    server = MemcachedServer(runtime)
    server.connect("fuzz")
    try:
        response = server.handle("fuzz", payload)
    except MemoryError_:  # pragma: no cover - would be a containment bug
        raise AssertionError("memory fault escaped the domain boundary")
    assert isinstance(response, bytes) and response


@settings(max_examples=40, deadline=None)
@given(depth=st.integers(min_value=1, max_value=5))
def test_pkru_grants_exactly_the_active_domain(depth):
    """PKRU invariant: inside any nesting of domain entries, the register
    grants write access to the innermost domain's key and to no other
    isolated domain's key; after full unwinding it is back to the root
    state."""
    runtime = SdradRuntime()
    domains = [
        runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        for _ in range(depth)
    ]
    observed = []

    def probe(level):
        def inner(handle):
            pkru = runtime.space.pkru
            grants = [
                d.pkey for d in domains if pkru.allows_write(d.pkey)
            ]
            observed.append((level, grants))
            if level + 1 < depth:
                runtime.execute(domains[level + 1].udi, probe(level + 1))
            return None

        return inner

    before = runtime.space.pkru.snapshot()
    runtime.execute(domains[0].udi, probe(0))
    assert runtime.space.pkru.snapshot() == before
    for level, grants in observed:
        assert grants == [domains[level].pkey]
