"""Tests for execution-context bookkeeping (nesting discipline)."""

from __future__ import annotations

import pytest

from repro.errors import SdradError
from repro.sdrad.context import ContextStack


class TestContextStack:
    def test_push_pop(self):
        contexts = ContextStack()
        ctx = contexts.push(udi=1, saved_pkru=0xFF, entered_at=1.0)
        assert contexts.depth == 1
        assert contexts.current is ctx
        contexts.pop(ctx)
        assert contexts.depth == 0
        assert contexts.current is None

    def test_nested_contexts(self):
        contexts = ContextStack()
        outer = contexts.push(1, 0, 0.0)
        inner = contexts.push(2, 1, 1.0)
        assert inner.depth == 1
        assert contexts.current_udi(root_udi=0) == 2
        contexts.pop(inner)
        assert contexts.current_udi(root_udi=0) == 1
        contexts.pop(outer)
        assert contexts.current_udi(root_udi=0) == 0

    def test_out_of_order_pop_rejected(self):
        contexts = ContextStack()
        outer = contexts.push(1, 0, 0.0)
        contexts.push(2, 1, 1.0)
        with pytest.raises(SdradError, match="out-of-order"):
            contexts.pop(outer)

    def test_pop_empty_rejected(self):
        contexts = ContextStack()
        ctx = contexts.push(1, 0, 0.0)
        contexts.pop(ctx)
        with pytest.raises(SdradError, match="underflow"):
            contexts.pop(ctx)

    def test_contains_udi(self):
        contexts = ContextStack()
        contexts.push(3, 0, 0.0)
        assert contexts.contains_udi(3)
        assert not contexts.contains_udi(4)

    def test_saved_pkru_preserved(self):
        contexts = ContextStack()
        ctx = contexts.push(1, 0xDEAD, 2.0)
        assert ctx.saved_pkru == 0xDEAD
        assert ctx.entered_at == 2.0
