"""Tests for availability arithmetic — the paper's §IV numbers, exactly."""

from __future__ import annotations

import math

import pytest

from repro.resilience.availability import (
    AvailabilityReport,
    availability_from_downtime,
    downtime_budget,
    max_fault_rate,
    max_recoveries,
    nines,
    violates_target,
)
from repro.sim.clock import MINUTES, YEARS


class TestPaperArithmetic:
    """§IV: 'a regular restart takes about 2 minutes (which would violate
    99.999 % availability if there were three faults per year), while our
    in-process rewinding takes only 3.5 µs, allowing for more than 9·10⁷
    recoveries'."""

    def test_five_nines_budget_is_315_seconds(self):
        assert downtime_budget(0.99999) == pytest.approx(315.36, abs=0.01)

    def test_three_two_minute_restarts_violate_five_nines(self):
        assert violates_target(3, 2 * MINUTES, 0.99999)

    def test_two_restarts_do_not_violate(self):
        assert not violates_target(2, 2 * MINUTES, 0.99999)

    def test_rewind_allows_more_than_9e7_recoveries(self):
        recoveries = max_recoveries(0.99999, 3.5e-6)
        assert recoveries > 9e7

    def test_rewind_headroom_magnitude(self):
        # 315.36 s / 3.5 µs ≈ 9.01·10⁷ — the paper's exact claim
        assert max_recoveries(0.99999, 3.5e-6) == pytest.approx(9.01e7, rel=0.01)


class TestBudget:
    def test_budget_scales_with_horizon(self):
        assert downtime_budget(0.99, 100.0) == pytest.approx(1.0)

    def test_perfect_availability_zero_budget(self):
        assert downtime_budget(1.0) == 0.0

    def test_invalid_availability_rejected(self):
        for bad in (0.0, -0.1, 1.1):
            with pytest.raises(ValueError):
                downtime_budget(bad)


class TestAvailabilityFromDowntime:
    def test_no_downtime_is_perfect(self):
        assert availability_from_downtime(0.0) == 1.0

    def test_half_horizon_down(self):
        assert availability_from_downtime(50.0, 100.0) == pytest.approx(0.5)

    def test_more_downtime_than_horizon_clamps_to_zero(self):
        assert availability_from_downtime(200.0, 100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            availability_from_downtime(1.0, 0.0)
        with pytest.raises(ValueError):
            availability_from_downtime(-1.0, 100.0)


class TestNines:
    @pytest.mark.parametrize(
        "availability, expected",
        [(0.9, 1.0), (0.99, 2.0), (0.999, 3.0), (0.99999, 5.0)],
    )
    def test_round_nines(self, availability, expected):
        assert nines(availability) == pytest.approx(expected)

    def test_perfect_is_infinite(self):
        assert math.isinf(nines(1.0))

    def test_zero_availability(self):
        assert nines(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nines(1.5)


class TestRates:
    def test_max_fault_rate_consistency(self):
        rate = max_fault_rate(0.99999, 2 * MINUTES)
        # rate × recovery time × horizon == budget
        assert rate * 2 * MINUTES * YEARS == pytest.approx(
            downtime_budget(0.99999), rel=1e-9
        )

    def test_zero_recovery_time_is_infinite_rate(self):
        assert math.isinf(max_fault_rate(0.99999, 0.0))

    def test_negative_recovery_rejected(self):
        with pytest.raises(ValueError):
            max_recoveries(0.99999, -1.0)


class TestReport:
    def test_compute(self):
        report = AvailabilityReport.compute("restart", 3, 2 * MINUTES)
        assert report.downtime == pytest.approx(360.0)
        assert not report.meets_five_nines
        assert report.achieved_nines == pytest.approx(4.94, abs=0.05)

    def test_rewind_report_meets(self):
        report = AvailabilityReport.compute("rewind", 1000, 3.5e-6)
        assert report.meets_five_nines
        assert report.availability > 0.9999999
