"""Tests for the Memcached-like KV store."""

from __future__ import annotations

import pytest

from repro.apps.kvstore import KVStore
from repro.errors import SdradError


@pytest.fixture
def store(runtime) -> KVStore:
    return KVStore(runtime, arena_size=512 * 1024, slab_page_size=16 * 1024)


class TestBasicOps:
    def test_set_get(self, store: KVStore):
        store.set(b"k", b"value", flags=7)
        assert store.get(b"k") == (b"value", 7)

    def test_miss_returns_none(self, store: KVStore):
        assert store.get(b"missing") is None

    def test_overwrite(self, store: KVStore):
        store.set(b"k", b"one")
        store.set(b"k", b"two much longer value")
        assert store.get(b"k") == (b"two much longer value", 0)
        assert store.item_count == 1

    def test_delete(self, store: KVStore):
        store.set(b"k", b"v")
        assert store.delete(b"k")
        assert store.get(b"k") is None
        assert not store.delete(b"k")

    def test_flush_all(self, store: KVStore):
        for i in range(10):
            store.set(b"k%d" % i, b"v")
        store.flush_all()
        assert store.item_count == 0
        assert store.state_bytes() == 0

    def test_contains_and_keys(self, store: KVStore):
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        assert store.contains(b"a")
        assert set(store.keys()) == {b"a", b"b"}

    def test_large_value(self, store: KVStore):
        value = b"x" * 8000
        store.set(b"big", value)
        assert store.get(b"big") == (value, 0)

    def test_empty_value(self, store: KVStore):
        store.set(b"k", b"")
        assert store.get(b"k") == (b"", 0)


class TestKeyValidation:
    def test_empty_key_rejected(self, store: KVStore):
        with pytest.raises(SdradError):
            store.set(b"", b"v")

    def test_overlong_key_rejected(self, store: KVStore):
        with pytest.raises(SdradError):
            store.set(b"k" * 251, b"v")

    def test_delimiter_keys_rejected(self, store: KVStore):
        for bad in (b"has space", b"has\rcr", b"has\nlf"):
            with pytest.raises(SdradError):
                store.set(bad, b"v")

    def test_250_byte_key_allowed(self, store: KVStore):
        store.set(b"k" * 250, b"v")
        assert store.get(b"k" * 250) == (b"v", 0)


class TestEviction:
    def test_lru_eviction_under_pressure(self, runtime):
        store = KVStore(runtime, arena_size=64 * 1024, slab_page_size=16 * 1024)
        value = b"v" * 1000
        inserted = 0
        for i in range(200):
            store.set(b"key-%04d" % i, value)
            inserted += 1
        assert store.stats.evictions > 0
        assert store.item_count < inserted
        # the most recent key must still be present (LRU evicts oldest)
        assert store.contains(b"key-0199")
        assert not store.contains(b"key-0000")

    def test_get_refreshes_recency(self, runtime):
        store = KVStore(runtime, arena_size=64 * 1024, slab_page_size=16 * 1024)
        value = b"v" * 1000
        store.set(b"keep-me", value)
        for i in range(100):
            store.set(b"filler-%04d" % i, value)
            store.get(b"keep-me")  # keep refreshing
        assert store.contains(b"keep-me")


class TestAccounting:
    def test_hit_rate(self, store: KVStore):
        store.set(b"k", b"v")
        store.get(b"k")
        store.get(b"k")
        store.get(b"nope")
        assert store.stats.hits == 2
        assert store.stats.misses == 1
        assert store.stats.hit_rate == pytest.approx(2 / 3)

    def test_state_bytes_grows_with_data(self, store: KVStore):
        before = store.state_bytes()
        for i in range(50):
            store.set(b"key-%d" % i, b"v" * 500)
        assert store.state_bytes() > before

    def test_ops_charge_virtual_time(self, runtime, store: KVStore):
        before = runtime.clock.now
        store.set(b"k", b"v")
        store.get(b"k")
        assert runtime.clock.now - before == pytest.approx(
            2 * runtime.cost.memcached_op
        )


class TestConditionalStores:
    def test_add_only_when_absent(self, store: KVStore):
        assert store.add(b"k", b"first")
        assert not store.add(b"k", b"second")
        assert store.get(b"k") == (b"first", 0)

    def test_replace_only_when_present(self, store: KVStore):
        assert not store.replace(b"k", b"nope")
        store.set(b"k", b"old")
        assert store.replace(b"k", b"new")
        assert store.get(b"k") == (b"new", 0)


class TestCounters:
    def test_incr(self, store: KVStore):
        store.set(b"n", b"10")
        assert store.incr(b"n", 5) == 15
        assert store.get(b"n") == (b"15", 0)

    def test_decr_clamps_at_zero(self, store: KVStore):
        store.set(b"n", b"3")
        assert store.incr(b"n", -10) == 0

    def test_incr_missing_key(self, store: KVStore):
        assert store.incr(b"missing", 1) is None

    def test_incr_non_numeric(self, store: KVStore):
        store.set(b"s", b"not a number")
        assert store.incr(b"s", 1) is None

    def test_incr_preserves_flags(self, store: KVStore):
        store.set(b"n", b"1", flags=9)
        store.incr(b"n", 1)
        assert store.get(b"n") == (b"2", 9)


class TestBatchedGet:
    def test_get_many_matches_individual_gets(self, store: KVStore):
        for i in range(8):
            store.set(b"k%d" % i, b"v%d" % i, flags=i)
        keys = [b"k%d" % i for i in range(8)] + [b"missing"]
        result = store.get_many(keys)
        assert set(result) == {b"k%d" % i for i in range(8)}
        for i in range(8):
            assert result[b"k%d" % i] == store.get(b"k%d" % i)

    def test_get_many_updates_stats(self, store: KVStore):
        store.set(b"a", b"1")
        hits = store.stats.hits
        misses = store.stats.misses
        store.get_many([b"a", b"nope"])
        assert store.stats.hits == hits + 1
        assert store.stats.misses == misses + 1

    def test_get_many_empty(self, store: KVStore):
        assert store.get_many([]) == {}
