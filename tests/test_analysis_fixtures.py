"""sdradlint self-tests over the planted fixture modules.

Every ``*_violations.py`` fixture carries ``# expect[Rn]`` trailing
comments on the lines where a finding must be reported; the harness
extracts those markers and demands an *exact* match on (rule, line).
Every ``*_ok.py`` fixture mirrors a legitimate repo idiom and must lint
completely clean — those near-misses are what keep the rules honest.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from pathlib import Path

import pytest

from repro.analysis import RULES
from repro.analysis import baseline as baseline_mod
from repro.analysis.__main__ import main as lint_main
from repro.analysis.runner import lint_paths, lint_source

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "sdradlint"
REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

_EXPECT_RE = re.compile(r"#\s*expect\[([A-Za-z0-9,\s]+)\]")

VIOLATION_FILES = sorted(p.name for p in FIXTURES.glob("*_violations.py"))
OK_FILES = sorted(p.name for p in FIXTURES.glob("*_ok.py"))


def _expected_markers(source: str) -> set[tuple[str, int]]:
    """Collect (rule, line) pairs from ``# expect[...]`` comments."""
    expected: set[tuple[str, int]] = set()
    for tok in tokenize.generate_tokens(io.StringIO(source).readline):
        if tok.type != tokenize.COMMENT:
            continue
        match = _EXPECT_RE.search(tok.string)
        if match:
            for rule in match.group(1).split(","):
                expected.add((rule.strip().upper(), tok.start[0]))
    return expected


def _lint_fixture(name: str):
    path = FIXTURES / name
    return path, lint_source(str(path), path.read_text(encoding="utf-8"))


class TestPlantedViolations:
    @pytest.mark.parametrize("name", VIOLATION_FILES)
    def test_markers_match_exactly(self, name):
        path, result = _lint_fixture(name)
        assert not result.errors
        expected = _expected_markers(path.read_text(encoding="utf-8"))
        assert expected, f"{name} has no # expect[...] markers"
        actual = {(f.rule, f.line) for f in result.findings}
        assert actual == expected
        for finding in result.findings:
            assert finding.path == str(path)
            assert finding.qualname and finding.qualname != "<module>"

    def test_every_rule_has_a_planted_violation(self):
        seen = set()
        for name in VIOLATION_FILES:
            _, result = _lint_fixture(name)
            seen.update(f.rule for f in result.findings)
        assert seen == set(RULES)


class TestNearMisses:
    @pytest.mark.parametrize("name", OK_FILES)
    def test_clean_under_all_rules(self, name):
        _, result = _lint_fixture(name)
        assert not result.errors
        assert [f.render() for f in result.findings] == []
        assert result.suppressed == []


class TestSuppressions:
    def test_ignore_comments_hush_but_are_counted(self):
        _, result = _lint_fixture("suppressions.py")
        assert result.findings == []
        assert {f.rule for f in result.suppressed} == {"R1", "R3"}
        assert len(result.suppressed) == 2


class TestRepoIsClean:
    def test_no_findings_in_src_repro(self):
        result = lint_paths([str(REPO_SRC)])
        assert not result.errors
        assert [f.render() for f in result.findings] == []
        assert result.files > 50


class TestWitnesses:
    """Interprocedural findings carry the ``f -> g -> h`` call path."""

    def test_r5_findings_have_two_hop_witnesses(self):
        _, result = _lint_fixture("r5_violations.py")
        r5 = [f for f in result.findings if f.rule == "R5"]
        assert r5
        for finding in r5:
            assert len(finding.call_path) >= 2, finding.render()
            # The chain starts at the reporting domain body.
            assert finding.call_path[0].function == finding.qualname
            for hop in finding.call_path:
                assert hop.path.endswith("r5_violations.py")
                assert hop.line > 0

    def test_deep_chain_has_three_hops(self):
        _, result = _lint_fixture("r5_violations.py")
        deep = [
            f
            for f in result.findings
            if f.qualname == "leak_deep_helper_return"
        ]
        assert len(deep) == 1
        functions = [hop.function for hop in deep[0].call_path]
        assert functions == [
            "leak_deep_helper_return", "fetch_view_indirect", "fetch_view",
        ]

    def test_witness_rendered_in_human_output(self):
        _, result = _lint_fixture("r5_violations.py")
        rendered = [f.render() for f in result.findings if f.call_path]
        assert rendered
        for text in rendered:
            assert "[witness: " in text
            assert " -> " in text

    def test_witness_in_json_output(self, capsys):
        code = lint_main(
            [
                str(FIXTURES / "r5_violations.py"),
                "--no-baseline", "--no-cache", "--json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        witnessed = [f for f in payload["findings"] if f["call_path"]]
        assert witnessed
        for record in witnessed:
            assert len(record["call_path"]) >= 2
            for hop in record["call_path"]:
                assert set(hop) == {"function", "path", "line"}

    def test_r6_unguarded_path_witness(self):
        _, result = _lint_fixture("r6_violations.py")
        poked = [f for f in result.findings if f.qualname == "poke_gate"]
        assert len(poked) == 1
        functions = [hop.function for hop in poked[0].call_path]
        assert functions == ["unguarded_root", "poke_gate"]

    def test_r7_raw_helper_witness(self):
        _, result = _lint_fixture("r7_violations.py")
        routed = [
            f for f in result.findings if f.qualname == "raw_through_helper"
        ]
        assert len(routed) == 1
        functions = [hop.function for hop in routed[0].call_path]
        assert functions == ["raw_through_helper", "_push_raw"]


class TestSarif:
    GOLDEN = FIXTURES / "golden_sarif.json"

    def _render(self) -> str:
        from repro.analysis import sarif as sarif_mod

        path = "tests/fixtures/sdradlint/r5_violations.py"
        source = (FIXTURES / "r5_violations.py").read_text(encoding="utf-8")
        result = lint_source(path, source)
        return sarif_mod.render(result.sorted_findings()) + "\n"

    def test_matches_golden_file(self):
        assert self._render() == self.GOLDEN.read_text(encoding="utf-8")

    def test_shape_and_witness_locations(self):
        log = json.loads(self._render())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "sdradlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(RULES)
        assert run["results"]
        for res in run["results"]:
            assert res["ruleId"] == "R5"
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith(
                "r5_violations.py"
            )
            assert loc["region"]["startLine"] > 0
            assert len(res["relatedLocations"]) >= 2

    def test_cli_format_sarif(self, capsys):
        code = lint_main(
            [
                str(FIXTURES / "r5_violations.py"),
                "--no-baseline", "--no-cache", "--format", "sarif",
            ]
        )
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]


class TestFingerprints:
    SOURCE = (
        "def leaky(handle: DomainHandle, raw):\n"
        "    return handle.load_view(0, 8)\n"
    )

    def test_line_shift_does_not_change_fingerprint(self):
        before = lint_source("m.py", self.SOURCE).findings
        after = lint_source("m.py", "\n\n\n" + self.SOURCE).findings
        assert len(before) == len(after) == 1
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint


class TestCli:
    def test_violations_exit_1(self, capsys):
        code = lint_main(
            [str(FIXTURES / "r1_violations.py"), "--no-baseline"]
        )
        assert code == 1
        assert "R1" in capsys.readouterr().out

    def test_clean_file_exits_0(self, capsys):
        code = lint_main([str(FIXTURES / "r1_ok.py"), "--no-baseline"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_rules_filter(self, capsys):
        code = lint_main(
            [str(FIXTURES / "r1_violations.py"), "--no-baseline", "--rules", "R4"]
        )
        assert code == 0
        capsys.readouterr()

    def test_unknown_rule_exits_2(self, capsys):
        code = lint_main([str(FIXTURES), "--rules", "R9"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_json_output_shape(self, capsys):
        code = lint_main(
            [str(FIXTURES / "r4_violations.py"), "--no-baseline", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert payload["baselined"] == []
        assert payload["findings"]
        record = payload["findings"][0]
        assert set(record) == {
            "rule", "severity", "path", "line", "col",
            "function", "message", "fingerprint", "call_path",
        }
        assert record["rule"] == "R4"

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        assert lint_main([str(bad), "--no-baseline"]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        target = str(FIXTURES / "r2_violations.py")
        blfile = str(tmp_path / "bl.json")
        assert lint_main([target, "--write-baseline", "--baseline", blfile]) == 0
        capsys.readouterr()
        # Same findings are now all baselined: gate passes.
        assert lint_main([target, "--baseline", blfile]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "0 baselined" not in out
        entries = baseline_mod.load(blfile)
        assert entries and all(len(k) == 16 for k in entries)
