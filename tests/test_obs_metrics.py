"""Tests for the obs metric primitives and the central registry."""

from __future__ import annotations

import math

import pytest

from repro.errors import SdradError
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    BucketHistogram,
    Counter,
    DEFAULT_BUCKETS,
    FLEET_LATENCY_BUCKETS,
    Gauge,
    ObsRegistry,
    REWIND_LATENCY_BUCKETS,
    log_buckets,
)
from repro.sim.metrics import Histogram as ExactHistogram


class TestCounter:
    def test_monotone(self):
        c = Counter("requests")
        c.increment()
        c.increment(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_labels_are_sorted_items(self):
        c = Counter("requests", labels={"status": "ok", "app": "memcached"})
        assert c.labels == (("app", "memcached"), ("status", "ok"))


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("live", initial=2)
        g.add(3)
        g.set(1.5)
        g.add(-0.5)
        assert g.value == pytest.approx(1.0)


class TestBucketHistogram:
    def test_validation(self):
        with pytest.raises(SdradError):
            BucketHistogram("h", buckets=())
        with pytest.raises(SdradError):
            BucketHistogram("h", buckets=(2.0, 1.0))
        with pytest.raises(SdradError):
            BucketHistogram("h", buckets=(1.0, 1.0))
        with pytest.raises(SdradError):
            BucketHistogram("h", buckets=(1.0, math.inf))

    def test_binning_is_le_inclusive(self):
        h = BucketHistogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(value)
        assert h.bucket_counts == [2, 2, 1]  # le=1, le=10, +Inf
        assert h.count == 5
        assert h.sum == pytest.approx(27.5)

    def test_cumulative_prometheus_shape(self):
        h = BucketHistogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(20.0)
        cum = h.cumulative()
        assert cum == [(1.0, 1), (10.0, 1), (math.inf, 2)]

    def test_mean_and_quantile(self):
        h = BucketHistogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            h.observe(value)
        assert h.mean() == pytest.approx(6.6 / 4)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        h.observe(100.0)
        assert h.quantile(1.0) == math.inf

    def test_quantile_interpolated_within_bucket(self):
        h = BucketHistogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (1.5, 1.5, 3.0, 3.0):
            h.observe(value)
        # Two samples in (1, 2]: the median rank (2 of 4) sits at the top
        # of that bucket; p25 sits halfway through it.
        assert h.quantile_interpolated(0.5) == pytest.approx(2.0)
        assert h.quantile_interpolated(0.25) == pytest.approx(1.5)
        assert h.quantile_interpolated(0.75) == pytest.approx(3.0)

    def test_quantile_interpolated_first_bucket_starts_at_zero(self):
        h = BucketHistogram("h", buckets=(2.0, 4.0))
        h.observe(1.0)
        h.observe(1.0)
        assert h.quantile_interpolated(0.5) == pytest.approx(1.0)

    def test_quantile_interpolated_overflow_clamps_to_last_bound(self):
        h = BucketHistogram("h", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile_interpolated(0.99) == 2.0

    def test_quantile_interpolated_validation(self):
        h = BucketHistogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile_interpolated(0.5)
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile_interpolated(-0.1)

    def test_fine_ladder_resolves_p999(self):
        # The whole point of the fleet ladder: p99 and p999 of a bimodal
        # population come back near the true values, not one bucket edge.
        h = BucketHistogram("h", buckets=FLEET_LATENCY_BUCKETS)
        for _ in range(999):
            h.observe(1e-5)
        h.observe(5e-3)
        p999 = h.quantile_interpolated(0.999)
        assert 0.9e-5 < h.quantile_interpolated(0.5) < 1.2e-5
        assert 0.9e-5 < h.quantile_interpolated(0.99) < 1.2e-5
        assert 0.9e-5 < p999 < 1.2e-5
        assert 4e-3 < h.quantile_interpolated(1.0) < 6e-3

    def test_empty_histogram_errors(self):
        h = BucketHistogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.mean()
        with pytest.raises(ValueError):
            h.quantile(0.5)
        with pytest.raises(ValueError):
            h.quantile(2.0)


class TestLogBuckets:
    def test_geometric_spacing(self):
        bounds = log_buckets(1e-3, 1.0, 10)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] >= 1.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10 ** 0.1) for r in ratios)

    def test_strictly_increasing_and_usable(self):
        bounds = log_buckets(1e-7, 100.0, 20)
        assert list(bounds) == sorted(set(bounds))
        BucketHistogram("h", buckets=bounds)  # accepted by the validator

    def test_fleet_ladder_shape(self):
        assert FLEET_LATENCY_BUCKETS == log_buckets(1e-7, 100.0, 20)
        assert DEFAULT_BUCKETS["fleet_request_latency_seconds"] is (
            FLEET_LATENCY_BUCKETS
        )

    def test_validation(self):
        with pytest.raises(SdradError):
            log_buckets(0.0, 1.0, 10)
        with pytest.raises(SdradError):
            log_buckets(1.0, 1.0, 10)
        with pytest.raises(SdradError):
            log_buckets(1e-3, 1.0, 0)


class TestObsRegistry:
    def test_get_or_create_identity(self):
        reg = ObsRegistry()
        a = reg.counter("requests", app="memcached")
        b = reg.counter("requests", app="memcached")
        c = reg.counter("requests", app="nginx")
        assert a is b and a is not c

    def test_default_buckets_by_name(self):
        reg = ObsRegistry()
        h = reg.histogram("sdrad_rewind_latency_seconds")
        assert h.buckets == REWIND_LATENCY_BUCKETS
        b = reg.histogram("app_batch_size")
        assert b.buckets == tuple(float(x) for x in BATCH_SIZE_BUCKETS)
        assert set(DEFAULT_BUCKETS) >= {
            "app_request_latency_seconds",
            "sdrad_rewind_latency_seconds",
            "app_batch_size",
        }

    def test_counter_total_partial_label_match(self):
        reg = ObsRegistry()
        reg.counter("app_requests_total", app="memcached", status="ok").increment(3)
        reg.counter("app_requests_total", app="memcached", status="fault").increment()
        reg.counter("app_requests_total", app="nginx", status="ok").increment(5)
        assert reg.counter_total("app_requests_total") == 9
        assert reg.counter_total("app_requests_total", app="memcached") == 4
        assert reg.counter_total("app_requests_total", status="ok") == 8
        assert reg.counter_total("app_requests_total", app="tls") == 0

    def test_gauge_value_defaults_to_zero(self):
        reg = ObsRegistry()
        assert reg.gauge_value("missing") == 0.0
        reg.gauge("live").set(3)
        assert reg.gauge_value("live") == 3.0

    def test_snapshot_sorted_and_json_friendly(self):
        import json

        reg = ObsRegistry()
        reg.counter("b_total").increment()
        reg.counter("a_total", app="x").increment(2)
        reg.gauge("depth").set(1)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap['counter/a_total{app="x"}'] == 2
        hist = snap["histogram/lat"]
        assert hist["count"] == 1 and hist["buckets"]["+Inf"] == 1
        json.dumps(snap)

    def test_adopt_exact_histogram(self):
        reg = ObsRegistry()
        exact = ExactHistogram("exact_latency")
        exact.observe(1.0)
        reg.adopt_histogram(exact)
        assert reg.iter_adopted() == [exact]
        assert "summary/exact_latency" in reg.snapshot()
        with pytest.raises(SdradError):
            reg.adopt_histogram(object())
