"""Runtime instrumentation tests, including the PR's acceptance check:
at ``sampling=1.0`` every rewind of a fault-injection campaign produces a
span carrying its cause and simulated duration.
"""

from __future__ import annotations

import pytest

from repro.faultinj.injector import FaultInjector
from repro.faultinj.models import FaultKind
from repro.obs import Observability
from repro.sdrad.constants import DomainFlags
from repro.sdrad.policy import ProcessCrashed, RewindPolicy
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import consistency_check


def observed_runtime(sampling: float = 1.0) -> SdradRuntime:
    return SdradRuntime(obs=Observability(sampling=sampling))


class TestExecuteSpans:
    def test_clean_execution_span(self):
        runtime = observed_runtime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: h.malloc(16))
        spans = runtime.obs.buffer.of_name("domain.execute")
        assert len(spans) == 1
        span = spans[0]
        assert span.status == "ok"
        assert span.attrs["udi"] == domain.udi
        assert span.duration > 0.0
        assert runtime.obs.buffer.tree_violations() == []

    def test_fault_produces_cause_and_duration(self):
        runtime = observed_runtime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        result = runtime.execute(domain.udi, lambda h: h.store(0, b"x"))
        assert not result.ok
        buf = runtime.obs.buffer
        [execute] = buf.of_name("domain.execute")
        assert execute.status == "fault"
        [fault] = buf.of_name("domain.fault")
        [rewind] = buf.of_name("domain.rewind")
        assert fault.parent_id == execute.span_id
        assert rewind.parent_id == execute.span_id
        assert fault.attrs["mechanism"] == result.fault.mechanism.value
        assert rewind.attrs["cause"] == result.fault.mechanism.value
        assert rewind.attrs["duration"] == pytest.approx(result.recovery_time)
        assert rewind.attrs["duration"] > 0.0

    def test_logic_error_closes_span(self):
        runtime = observed_runtime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def bad(handle):
            raise KeyError("app bug, not a memory fault")

        with pytest.raises(KeyError):
            runtime.execute(domain.udi, bad)
        [execute] = runtime.obs.buffer.of_name("domain.execute")
        assert execute.status == "error"
        assert runtime.obs.open_span_count == 0

    def test_obs_defaults_to_none(self):
        runtime = SdradRuntime()
        assert runtime.obs is None
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        assert runtime.execute(domain.udi, lambda h: 42).value == 42

    def test_obs_does_not_change_virtual_time(self):
        """Instrumentation must read the clock, never charge it."""

        def workload(runtime: SdradRuntime) -> float:
            domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
            runtime.execute(domain.udi, lambda h: h.malloc(32))
            runtime.execute(domain.udi, lambda h: h.store(0, b"fault"))
            runtime.domain_destroy(domain.udi)
            return runtime.clock.now

        assert workload(SdradRuntime()) == workload(observed_runtime())

    def test_lifecycle_counters(self):
        runtime = observed_runtime()
        reg = runtime.obs.registry
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: None)
        runtime.domain_destroy(domain.udi)
        assert reg.counter_total("sdrad_domains_created_total") == 1
        assert reg.counter_total("sdrad_domains_destroyed_total") == 1
        assert reg.counter_total("sdrad_domain_entries_total") == 1


class TestCampaignAcceptance:
    """Every rewind in a fault-injection sweep has a cause+duration span."""

    def test_all_rewinds_have_attributed_spans(self):
        runtime = observed_runtime(sampling=1.0)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        injector = FaultInjector(runtime)
        for kind in FaultKind:
            for _ in range(3):
                try:
                    injector.inject(domain.udi, kind, policy=RewindPolicy())
                except ProcessCrashed:
                    pytest.fail(f"{kind} escaped containment under RewindPolicy")

        obs = runtime.obs
        rewind_spans = obs.buffer.of_name("domain.rewind")
        rewinds_counted = obs.registry.counter_total("sdrad_rewinds_total")
        assert rewinds_counted > 0
        assert len(rewind_spans) == rewinds_counted
        assert len(rewind_spans) == runtime.tracer.count("domain.rewind")
        for span in rewind_spans:
            assert isinstance(span.attrs["cause"], str) and span.attrs["cause"]
            assert span.attrs["duration"] > 0.0
            assert span.parent_id is not None  # nested under its execution
        # Causes reflect the detection mechanisms, tracked per-label.
        for span in rewind_spans:
            labelled = obs.registry.counter_total(
                "sdrad_rewinds_total", cause=span.attrs["cause"]
            )
            assert labelled > 0
        assert obs.buffer.tree_violations() == []
        assert consistency_check(runtime) == []

    def test_sampled_campaign_keeps_metrics_exact(self):
        runtime = observed_runtime(sampling=0.25)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        injector = FaultInjector(runtime)
        for _ in range(8):
            injector.inject(domain.udi, FaultKind.STACK_SMASH, policy=RewindPolicy())
        obs = runtime.obs
        # Metrics see all 8 rewinds; the span buffer only the sampled traces.
        assert obs.registry.counter_total("sdrad_rewinds_total") == 8
        assert obs.buffer.count("domain.rewind") == 2
        assert consistency_check(runtime) == []


class TestTelemetryIntegration:
    def test_snapshot_gains_obs_section(self):
        from repro.sdrad.telemetry import snapshot

        runtime = observed_runtime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: None)
        data = snapshot(runtime)
        obs_block = data["obs"]
        assert obs_block["sampling"] == 1.0
        assert obs_block["open_spans"] == 0
        assert obs_block["dropped_spans"] == 0
        assert obs_block["spans"] == len(runtime.obs.buffer)
        assert "counter/sdrad_domain_entries_total" in obs_block["metrics"]
        assert "obs" not in snapshot(SdradRuntime())

    def test_consistency_check_catches_counter_drift(self):
        runtime = observed_runtime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: h.store(0, b"fault"))
        assert consistency_check(runtime) == []
        # Drift the counter behind the tracer's back: must fail loudly.
        runtime.obs.registry.counter("sdrad_rewinds_total").increment(5)
        problems = consistency_check(runtime)
        assert any("sdrad_rewinds_total" in p for p in problems)

    def test_consistency_check_catches_orphan_spans(self):
        runtime = observed_runtime()
        runtime.obs.start_span("left.open")
        problems = consistency_check(runtime)
        assert any("still open" in p for p in problems)
