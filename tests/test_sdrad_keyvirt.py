"""Tests for libmpk-style protection-key virtualisation."""

from __future__ import annotations

import pytest

from repro.errors import SdradError
from repro.sdrad.constants import DomainFlags
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.runtime import SdradRuntime


@pytest.fixture
def vruntime() -> SdradRuntime:
    return SdradRuntime(key_virtualization=True)


def make_domains(runtime: SdradRuntime, count: int):
    return [
        runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT,
            heap_size=64 * 1024,
            stack_size=16 * 1024,
        )
        for _ in range(count)
    ]


class TestScalability:
    def test_more_than_fifteen_domains(self, vruntime):
        domains = make_domains(vruntime, 40)
        assert len(domains) == 40

    def test_all_domains_executable(self, vruntime):
        domains = make_domains(vruntime, 30)
        for domain in domains:
            result = vruntime.execute(domain.udi, lambda h: h.udi)
            assert result.ok and result.value == domain.udi

    def test_without_virtualization_limit_still_holds(self, runtime):
        from repro.errors import OutOfDomains

        for _ in range(15):
            runtime.domain_init()
        with pytest.raises(OutOfDomains):
            runtime.domain_init()


class TestBindingMechanics:
    def test_domain_starts_on_lock_key(self, vruntime):
        domain = make_domains(vruntime, 1)[0]
        assert domain.pkey == vruntime.keys.lock_pkey
        assert not vruntime.keys.is_bound(domain.udi)

    def test_first_entry_binds(self, vruntime):
        domain = make_domains(vruntime, 1)[0]
        vruntime.execute(domain.udi, lambda h: None)
        assert vruntime.keys.is_bound(domain.udi)
        assert domain.pkey != vruntime.keys.lock_pkey

    def test_repeat_entry_is_a_hit(self, vruntime):
        domain = make_domains(vruntime, 1)[0]
        vruntime.execute(domain.udi, lambda h: None)
        vruntime.execute(domain.udi, lambda h: None)
        assert vruntime.keys.stats.binds == 1
        assert vruntime.keys.stats.hits == 1
        assert vruntime.keys.hit_rate() == pytest.approx(0.5)

    def test_eviction_under_pressure(self, vruntime):
        domains = make_domains(vruntime, 20)
        for domain in domains:
            vruntime.execute(domain.udi, lambda h: None)
        assert vruntime.keys.stats.evictions > 0
        # bound set never exceeds the physical pool
        assert len(vruntime.keys.bound_domains) <= 14

    def test_lru_eviction_order(self, vruntime):
        domains = make_domains(vruntime, 15)
        for domain in domains[:14]:  # fill the pool
            vruntime.execute(domain.udi, lambda h: None)
        first_bound = vruntime.keys.bound_domains[0]
        vruntime.execute(domains[14].udi, lambda h: None)  # forces eviction
        assert not vruntime.keys.is_bound(first_bound)

    def test_destroy_returns_key_to_pool(self, vruntime):
        domains = make_domains(vruntime, 14)
        for domain in domains:
            vruntime.execute(domain.udi, lambda h: None)
        free_before = vruntime.keys.free_physical_keys
        vruntime.domain_destroy(domains[0].udi)
        assert vruntime.keys.free_physical_keys == free_before + 1

    def test_rebind_charges_retag_cost(self, vruntime):
        domains = make_domains(vruntime, 15)
        for domain in domains[:14]:
            vruntime.execute(domain.udi, lambda h: None)
        before = vruntime.clock.now
        vruntime.execute(domains[14].udi, lambda h: None)  # evict + bind
        elapsed = vruntime.clock.now - before
        # two retags (evictee + bindee), each 2 syscalls + per-page cost
        assert elapsed > 4 * vruntime.cost.pkey_syscall

    def test_hit_path_charges_no_retag(self, vruntime):
        domain = make_domains(vruntime, 1)[0]
        vruntime.execute(domain.udi, lambda h: None)
        before = vruntime.clock.now
        vruntime.execute(domain.udi, lambda h: None)
        elapsed = vruntime.clock.now - before
        assert elapsed == pytest.approx(vruntime.cost.domain_roundtrip())


class TestIsolationUnderVirtualization:
    def test_cross_domain_write_still_trapped(self, vruntime):
        a, b = make_domains(vruntime, 2)
        result = vruntime.execute(a.udi, lambda h: h.store(b.heap_base, b"x"))
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_evicted_domain_memory_is_locked(self, vruntime):
        domains = make_domains(vruntime, 20)
        for domain in domains:
            vruntime.execute(domain.udi, lambda h: h.store(h.malloc(16), b"data"))
        evicted = next(
            d for d in domains if not vruntime.keys.is_bound(d.udi)
        )
        reader = next(d for d in domains if vruntime.keys.is_bound(d.udi))
        result = vruntime.execute(
            reader.udi, lambda h: h.load(evicted.heap_base, 4)
        )
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_data_survives_eviction_and_rebind(self, vruntime):
        domains = make_domains(vruntime, 20)
        target = domains[0]
        addr_holder = {}

        def write(handle):
            addr = handle.malloc(32)
            handle.store(addr, b"survives eviction!")
            addr_holder["addr"] = addr

        vruntime.execute(target.udi, write)
        # thrash the pool so the target is definitely evicted
        for domain in domains[1:]:
            vruntime.execute(domain.udi, lambda h: None)
        assert not vruntime.keys.is_bound(target.udi)
        result = vruntime.execute(
            target.udi, lambda h: h.load(addr_holder["addr"], 18)
        )
        assert result.ok and result.value == b"survives eviction!"

    def test_rewind_still_works_when_virtualized(self, vruntime):
        domain = make_domains(vruntime, 1)[0]
        result = vruntime.execute(domain.udi, lambda h: h.store(0, b"x"))
        assert not result.ok
        assert vruntime.execute(domain.udi, lambda h: "ok").value == "ok"

    def test_entered_domain_never_evicted(self, vruntime):
        domains = make_domains(vruntime, 16)

        def nest(handle):
            # enter the other 15 from inside domain 0: the innermost entries
            # must not evict the currently executing domain
            for other in domains[1:15]:
                vruntime.execute(other.udi, lambda h: None)
            return "done"

        result = vruntime.execute(domains[0].udi, nest)
        assert result.ok

    def test_eviction_refused_if_all_keys_live(self, vruntime):
        domains = make_domains(vruntime, 15)

        def nest(remaining):
            def inner(handle):
                if remaining:
                    result = vruntime.execute(remaining[0].udi, nest(remaining[1:]))
                    return result
                return "deepest"

            return inner

        # 15 nested live entries need 15 physical keys but only 14 exist
        with pytest.raises(SdradError, match="cannot evict"):
            vruntime.execute(domains[0].udi, nest(domains[1:]))
