"""Tests for HTTP parsing and routing."""

from __future__ import annotations

import pytest

from repro.apps.http import (
    HttpRequest,
    HttpResponse,
    Router,
    default_router,
    parse_request_in_domain,
)
from repro.sdrad.runtime import SdradRuntime


def parse(runtime: SdradRuntime, udi: int, raw: bytes):
    return runtime.execute(udi, parse_request_in_domain, raw)


class TestParsing:
    def test_simple_get(self, runtime, domain):
        result = parse(runtime, domain.udi, b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
        assert result.ok
        request = result.value
        assert request.method == "GET"
        assert request.path == "/x"
        assert request.version == "HTTP/1.1"
        assert request.headers == {"host": "h"}

    def test_headers_lowercased_and_trimmed(self, runtime, domain):
        raw = b"GET / HTTP/1.1\r\nX-Thing:   padded value  \r\n\r\n"
        request = parse(runtime, domain.udi, raw).value
        assert request.headers["x-thing"] == "padded value"

    def test_body_with_content_length(self, runtime, domain):
        raw = b"POST /u HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        request = parse(runtime, domain.udi, raw).value
        assert request.body == b"hello"

    def test_body_truncated_to_declared(self, runtime, domain):
        # 3 declared, 5 sent: parser keeps the declared prefix... but a big
        # lie overflows (see containment tests); small ones fit the
        # allocation's rounded capacity
        raw = b"POST /u HTTP/1.1\r\nContent-Length: 3\r\n\r\nhello"
        request = parse(runtime, domain.udi, raw).value
        assert request.body == b"hel"

    @pytest.mark.parametrize(
        "raw",
        [
            b"nonsense",
            b"GET /\r\n\r\n",  # missing version
            b"BREW / HTTP/1.1\r\n\r\n",  # unsupported method
            b"GET / FTP/1.0\r\n\r\n",  # bad version
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        ],
    )
    def test_malformed_returns_none(self, runtime, domain, raw):
        result = parse(runtime, domain.udi, raw)
        assert result.ok
        assert result.value is None

    def test_too_many_headers_rejected(self, runtime, domain):
        headers = b"".join(b"H%d: v\r\n" % i for i in range(80))
        raw = b"GET / HTTP/1.1\r\n" + headers + b"\r\n"
        result = parse(runtime, domain.udi, raw)
        assert result.ok and result.value is None


class TestParserVulnerabilities:
    def test_long_request_line_faults(self, runtime, domain):
        raw = b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\nHost: h\r\n\r\n"
        result = parse(runtime, domain.udi, raw)
        assert not result.ok  # stack buffer smashed, domain rewound

    def test_long_header_value_faults(self, runtime, domain):
        raw = b"GET / HTTP/1.1\r\nX-Pad: " + b"B" * 300 + b"\r\n\r\n"
        result = parse(runtime, domain.udi, raw)
        assert not result.ok

    def test_content_length_lie_faults(self, runtime, domain):
        raw = b"POST /u HTTP/1.1\r\nContent-Length: 4\r\n\r\n" + b"C" * 500
        result = parse(runtime, domain.udi, raw)
        assert not result.ok

    def test_domain_reusable_after_parser_fault(self, runtime, domain):
        parse(runtime, domain.udi, b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\n\r\n")
        result = parse(runtime, domain.udi, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n")
        assert result.ok and result.value.path == "/"


class TestRouter:
    def test_exact_route(self):
        router = default_router()
        request = HttpRequest("GET", "/health", "HTTP/1.1")
        assert router.route(request).status == 200

    def test_prefix_route(self):
        router = default_router()
        request = HttpRequest("GET", "/static/app.js", "HTTP/1.1")
        assert router.route(request).status == 200

    def test_404(self):
        router = default_router()
        request = HttpRequest("GET", "/missing", "HTTP/1.1")
        assert router.route(request).status == 404

    def test_method_matters_for_exact_routes(self):
        router = default_router()
        request = HttpRequest("POST", "/health", "HTTP/1.1")
        assert router.route(request).status == 404

    def test_longest_prefix_wins(self):
        router = Router()
        router.add_prefix("/a/", HttpResponse(200, "OK", body=b"short"))
        router.add_prefix("/a/b/", HttpResponse(200, "OK", body=b"long"))
        request = HttpRequest("GET", "/a/b/c", "HTTP/1.1")
        assert router.route(request).body == b"long"


class TestResponseEncoding:
    def test_encode_sets_content_length(self):
        encoded = HttpResponse(200, "OK", body=b"12345").encode()
        assert b"Content-Length: 5\r\n" in encoded
        assert encoded.endswith(b"\r\n12345")

    def test_status_line(self):
        encoded = HttpResponse(404, "Not Found").encode()
        assert encoded.startswith(b"HTTP/1.1 404 Not Found\r\n")

    def test_custom_headers_preserved(self):
        encoded = HttpResponse(
            200, "OK", headers={"X-Custom": "yes"}
        ).encode()
        assert b"X-Custom: yes\r\n" in encoded
