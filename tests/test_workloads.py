"""Tests for workload generation: keys, arrivals, clients, traces."""

from __future__ import annotations

import random

import pytest

from repro.sim.rng import RngFactory
from repro.workloads.arrivals import ClosedLoop, OpenLoop
from repro.workloads.clients import (
    HttpClient,
    MaliciousHttpClient,
    MaliciousMemcachedClient,
    MemcachedClient,
    build_population,
)
from repro.workloads.traces import generate_trace
from repro.workloads.zipf import Keyspace, KeyValueWorkload, ValueSizer


def make_workload(seed: int = 1, size: int = 100) -> KeyValueWorkload:
    rng = random.Random(seed)
    return KeyValueWorkload(Keyspace(size), 0.99, rng)


class TestKeyspace:
    def test_keys_are_deterministic(self):
        ks = Keyspace(10)
        assert ks.key(3) == ks.key(3)
        assert ks.key(0) != ks.key(1)

    def test_keys_are_protocol_safe(self):
        ks = Keyspace(1000)
        for key in (ks.key(0), ks.key(999)):
            assert b" " not in key and b"\r" not in key
            assert len(key) <= 250

    def test_rank_bounds(self):
        ks = Keyspace(5)
        with pytest.raises(ValueError):
            ks.key(5)
        with pytest.raises(ValueError):
            ks.key(-1)

    def test_all_keys(self):
        assert len(Keyspace(7).all_keys()) == 7


class TestValueSizer:
    def test_sizes_within_bounds(self):
        sizer = ValueSizer(random.Random(2), median=128, minimum=8, maximum=1024)
        for _ in range(1000):
            assert 8 <= sizer.sample() <= 1024

    def test_median_roughly_respected(self):
        sizer = ValueSizer(random.Random(3), median=100, sigma=0.5)
        samples = sorted(sizer.sample() for _ in range(4001))
        assert samples[2000] == pytest.approx(100, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ValueSizer(random.Random(0), median=0)
        with pytest.raises(ValueError):
            ValueSizer(random.Random(0), median=10, minimum=20, maximum=30)


class TestArrivals:
    def test_open_loop_rate(self):
        arrivals = OpenLoop(10.0, random.Random(4))
        times = list(arrivals.times(100.0))
        assert len(times) == pytest.approx(1000, rel=0.2)
        assert times == sorted(times)

    def test_open_loop_validation(self):
        with pytest.raises(ValueError):
            OpenLoop(0.0, random.Random(0))

    def test_closed_loop_offered_rate(self):
        loop = ClosedLoop(10, think_time=0.9, rng=random.Random(5))
        assert loop.offered_rate(0.1) == pytest.approx(10.0)

    def test_closed_loop_zero_think(self):
        loop = ClosedLoop(4, think_time=0.0, rng=random.Random(6))
        assert loop.next_think() == 0.0
        assert loop.offered_rate(0.5) == pytest.approx(8.0)

    def test_closed_loop_validation(self):
        with pytest.raises(ValueError):
            ClosedLoop(0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            ClosedLoop(1, -1.0, random.Random(0))
        with pytest.raises(ValueError):
            ClosedLoop(1, 0.0, random.Random(0)).offered_rate(0.0)


class TestClients:
    def test_benign_memcached_requests_parse(self):
        client = MemcachedClient("c", make_workload(), random.Random(7))
        for _ in range(50):
            request = client.next_request()
            assert request.startswith((b"get ", b"set "))
            assert request.endswith(b"\r\n")
        assert not client.is_malicious()

    def test_set_fraction_respected(self):
        client = MemcachedClient(
            "c", make_workload(), random.Random(8), set_fraction=1.0
        )
        assert all(
            client.next_request().startswith(b"set ") for _ in range(20)
        )

    def test_malicious_memcached_mixes_attacks(self):
        client = MaliciousMemcachedClient(
            "m", make_workload(), random.Random(9), attack_fraction=1.0
        )
        requests = [client.next_request() for _ in range(50)]
        assert client.is_malicious()
        long_keys = [r for r in requests if r.startswith(b"get ") and len(r) > 260]
        lies = [r for r in requests if r.startswith(b"set pwn")]
        assert long_keys and lies

    def test_http_client_requests_are_wellformed(self):
        client = HttpClient("h", random.Random(10))
        request = client.next_request()
        assert request.startswith(b"GET ")
        assert request.endswith(b"\r\n\r\n")

    def test_malicious_http_attacks(self):
        client = MaliciousHttpClient("m", random.Random(11), attack_fraction=1.0)
        requests = [client.next_request() for _ in range(40)]
        assert any(len(r) > 1050 for r in requests)
        assert any(b"Content-Length:" in r for r in requests)

    def test_attack_fraction_validation(self):
        with pytest.raises(ValueError):
            MaliciousMemcachedClient(
                "m", make_workload(), random.Random(0), attack_fraction=0.0
            )


class TestPopulationAndTrace:
    def test_build_population_counts(self):
        factory = RngFactory(12)
        clients = build_population(
            3, 2, lambda cid, rng: make_workload(), factory
        )
        assert len(clients) == 5
        assert sum(1 for c in clients if c.is_malicious()) == 2

    def test_trace_determinism(self):
        def build():
            factory = RngFactory(13)
            clients = build_population(
                2, 1, lambda cid, rng: make_workload(), factory
            )
            return [
                (e.client_id, e.payload)
                for e in generate_trace(clients, 100, factory)
            ]

        assert build() == build()

    def test_trace_metadata(self):
        factory = RngFactory(14)
        clients = build_population(2, 1, lambda cid, rng: make_workload(), factory)
        trace = generate_trace(clients, 200, factory)
        assert len(trace) == 200
        assert set(trace.clients) <= {"benign-0", "benign-1", "mallory-0"}
        assert trace.malicious_count == len(trace.for_client("mallory-0"))

    def test_trace_validation(self):
        factory = RngFactory(15)
        with pytest.raises(ValueError):
            generate_trace([], 10, factory)
        clients = build_population(1, 0, lambda cid, rng: make_workload(), factory)
        with pytest.raises(ValueError):
            generate_trace(clients, -1, factory)

    def test_http_population(self):
        factory = RngFactory(16)
        clients = build_population(1, 1, None, factory, kind="http")
        assert clients[0].next_request().startswith(b"GET ")


class TestTracePersistence:
    def test_json_roundtrip(self):
        factory = RngFactory(21)
        clients = build_population(2, 1, lambda cid, rng: make_workload(), factory)
        trace = generate_trace(clients, 50, factory)
        restored = type(trace).from_json(trace.to_json())
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert (a.seq, a.client_id, a.payload, a.malicious) == (
                b.seq,
                b.client_id,
                b.payload,
                b.malicious,
            )

    def test_binary_payloads_survive(self):
        from repro.workloads.traces import TraceEntry, WorkloadTrace

        trace = WorkloadTrace(
            [TraceEntry(0, "c", bytes(range(256)), malicious=True)]
        )
        restored = WorkloadTrace.from_json(trace.to_json())
        assert restored[0].payload == bytes(range(256))
        assert restored[0].malicious

    def test_file_roundtrip(self, tmp_path):
        from repro.workloads.traces import TraceEntry, WorkloadTrace

        trace = WorkloadTrace([TraceEntry(0, "c", b"get k\r\n", False)])
        path = tmp_path / "trace.json"
        trace.save(str(path))
        assert len(WorkloadTrace.load(str(path))) == 1

    def test_invalid_document_rejected(self):
        from repro.workloads.traces import WorkloadTrace

        import pytest as _pytest

        with _pytest.raises(ValueError):
            WorkloadTrace.from_json("{not json")
