"""Tests for deterministic RNG streams and the Zipf sampler."""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.rng import RngFactory, ZipfSampler, zipf_weights


class TestRngFactory:
    def test_same_label_same_stream(self):
        a = RngFactory(7).stream("faults")
        b = RngFactory(7).stream("faults")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_differ(self):
        factory = RngFactory(7)
        a = factory.stream("faults")
        b = factory.stream("keys")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x")
        b = RngFactory(2).stream("x")
        assert a.random() != b.random()

    def test_child_factories_are_independent(self):
        root = RngFactory(3)
        child_a = root.child("a").stream("s")
        child_b = root.child("b").stream("s")
        assert child_a.random() != child_b.random()

    def test_child_is_deterministic(self):
        a = RngFactory(3).child("x").stream("s").random()
        b = RngFactory(3).child("x").stream("s").random()
        assert a == b

    def test_issued_streams_recorded(self):
        factory = RngFactory(0)
        factory.stream("one")
        factory.stream("two")
        assert set(factory.issued_streams()) == {"one", "two"}

    def test_stream_order_does_not_matter(self):
        f1 = RngFactory(9)
        f1.stream("a")
        x = f1.stream("b").random()
        f2 = RngFactory(9)
        y = f2.stream("b").random()
        assert x == y


class TestZipfWeights:
    def test_normalised(self):
        weights = zipf_weights(100, 0.99)
        assert sum(weights) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)

    def test_first_rank_dominates_with_high_skew(self):
        weights = zipf_weights(1000, 1.5)
        assert weights[0] > 0.35


class TestZipfSampler:
    def test_samples_within_range(self):
        sampler = ZipfSampler(20, 0.99, random.Random(1))
        for value in sampler.samples(500):
            assert 0 <= value < 20

    def test_skew_concentrates_on_low_ranks(self):
        sampler = ZipfSampler(1000, 0.99, random.Random(2))
        draws = list(sampler.samples(20000))
        top10 = sum(1 for d in draws if d < 10) / len(draws)
        assert top10 > 0.25  # uniform would give 1 %

    def test_matches_theoretical_head_mass(self):
        n, skew = 100, 1.0
        sampler = ZipfSampler(n, skew, random.Random(3))
        draws = list(sampler.samples(50000))
        empirical_rank0 = draws.count(0) / len(draws)
        theoretical = zipf_weights(n, skew)[0]
        assert empirical_rank0 == pytest.approx(theoretical, rel=0.1)

    def test_deterministic_given_seed(self):
        a = list(ZipfSampler(50, 0.8, random.Random(7)).samples(100))
        b = list(ZipfSampler(50, 0.8, random.Random(7)).samples(100))
        assert a == b

    def test_uniform_when_skew_zero(self):
        sampler = ZipfSampler(10, 0.0, random.Random(11))
        draws = list(sampler.samples(50000))
        for rank in range(10):
            frequency = draws.count(rank) / len(draws)
            assert frequency == pytest.approx(0.1, abs=0.02)

    def test_chi_square_against_weights(self):
        n, skew, draws_n = 30, 0.9, 30000
        sampler = ZipfSampler(n, skew, random.Random(13))
        weights = zipf_weights(n, skew)
        counts = [0] * n
        for d in sampler.samples(draws_n):
            counts[d] += 1
        chi2 = sum(
            (counts[i] - draws_n * weights[i]) ** 2 / (draws_n * weights[i])
            for i in range(n)
        )
        # 29 dof: 99.9th percentile ~ 58; generous bound to stay stable
        assert chi2 < 80, f"chi-square too high: {chi2}"
        assert math.isfinite(chi2)
