"""Tests for the diurnal grid-intensity model and carbon-aware analysis."""

from __future__ import annotations

import pytest

from repro.sim.clock import DAYS, HOURS, YEARS
from repro.sustainability.grid import (
    DiurnalIntensity,
    best_maintenance_window,
    interval_emissions_g,
    recovery_emissions,
    standby_replica_emissions_g,
)


@pytest.fixture
def grid() -> DiurnalIntensity:
    return DiurnalIntensity()


class TestDiurnalShape:
    def test_always_positive(self, grid):
        for hour in range(24):
            assert grid.at(hour * HOURS) > 0

    def test_daily_periodicity(self, grid):
        for hour in (0, 6, 12, 18):
            assert grid.at(hour * HOURS) == pytest.approx(
                grid.at(hour * HOURS + 3 * DAYS)
            )

    def test_evening_peak(self, grid):
        evening = grid.at(19 * HOURS)
        night = grid.at(3 * HOURS)
        assert evening > night

    def test_peak_exceeds_trough_substantially(self, grid):
        assert grid.peak() > 1.5 * grid.trough()

    def test_mean_over_full_day_near_mean(self, grid):
        mean = grid.mean_over(0.0, DAYS, steps=24 * 60)
        assert mean == pytest.approx(grid.mean_g_per_kwh, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalIntensity(mean_g_per_kwh=-1)
        with pytest.raises(ValueError):
            DiurnalIntensity(primary_amplitude=0.7, secondary_amplitude=0.4)
        with pytest.raises(ValueError):
            DiurnalIntensity().mean_over(0.0, 0.0)


class TestIntervalEmissions:
    def test_one_kwh_at_constant_grid(self):
        flat = DiurnalIntensity(primary_amplitude=0.0, secondary_amplitude=0.0)
        grams = interval_emissions_g(flat, 1000.0, 0.0, HOURS)
        assert grams == pytest.approx(300.0)

    def test_peak_window_emits_more(self, grid):
        peak = interval_emissions_g(grid, 500.0, 19 * HOURS, HOURS)
        trough_start, _ = best_maintenance_window(grid, HOURS)
        trough = interval_emissions_g(grid, 500.0, trough_start, HOURS)
        assert peak > trough

    def test_zero_duration_is_zero(self, grid):
        assert interval_emissions_g(grid, 500.0, 0.0, 0.0) == 0.0

    def test_negative_power_rejected(self, grid):
        with pytest.raises(ValueError):
            interval_emissions_g(grid, -1.0, 0.0, 1.0)


class TestRecoveryEmissions:
    def test_rewind_recovery_is_negligible(self, grid):
        times = [i * (YEARS / 1000) for i in range(1000)]
        result = recovery_emissions("rewind", times, 3.5e-6, 300.0, grid)
        assert result.recovery_emissions_g < 0.01  # grams, for 1000 faults

    def test_restart_recovery_is_measurable(self, grid):
        times = [i * (YEARS / 100) for i in range(100)]
        result = recovery_emissions("restart", times, 120.0, 300.0, grid)
        assert result.recovery_emissions_g > 100.0

    def test_bounds_bracket_actual(self, grid):
        times = [i * (YEARS / 50) for i in range(50)]
        result = recovery_emissions("restart", times, 120.0, 300.0, grid)
        assert result.best_case_g <= result.recovery_emissions_g <= result.worst_case_g

    def test_timing_exposure_ratio(self, grid):
        result = recovery_emissions("restart", [0.0], 120.0, 300.0, grid)
        assert result.worst_case_g > 1.5 * result.best_case_g


class TestStandbyReplica:
    def test_standby_dwarfs_recovery_windows(self, grid):
        standby = standby_replica_emissions_g(grid, 150.0, YEARS)
        restarts = recovery_emissions(
            "restart", [i * (YEARS / 10) for i in range(10)], 120.0, 300.0, grid
        )
        assert standby > 1000 * restarts.recovery_emissions_g

    def test_scales_with_horizon(self, grid):
        one = standby_replica_emissions_g(grid, 100.0, 30 * DAYS)
        two = standby_replica_emissions_g(grid, 100.0, 60 * DAYS)
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            standby_replica_emissions_g(grid, 100.0, 0.0)


class TestMaintenanceWindow:
    def test_best_window_is_off_peak(self, grid):
        start, mean = best_maintenance_window(grid, 2 * HOURS)
        assert mean < grid.mean_g_per_kwh  # better than average
        # not during the evening peak
        peak_seconds = 19 * HOURS
        assert not (peak_seconds - HOURS < start < peak_seconds + HOURS)

    def test_window_mean_is_achievable(self, grid):
        start, mean = best_maintenance_window(grid, HOURS)
        assert mean == pytest.approx(grid.mean_over(start, HOURS))

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            best_maintenance_window(grid, 0.0)
