"""Fleet front-end: scatter-gather identity, routing, failover, scaling."""

from __future__ import annotations

import pytest

from repro.errors import SdradError
from repro.fleet import (
    Autoscaler,
    AutoscalerConfig,
    Fleet,
    HealthConfig,
    HealthMonitor,
)
from repro.obs.hub import Observability

ITEMS = [(b"item:%05d" % i, b"payload-%d-" % i + b"x" * (i % 50)) for i in range(400)]
KEYS = [key for key, _ in ITEMS]


def loaded_fleet(shards, **kwargs):
    fleet = Fleet(shards, seed=7, **kwargs)
    assert fleet.set_many(list(ITEMS)) == len(ITEMS)
    return fleet


class TestScatterGather:
    def test_multiget_bit_identical_to_single_shard(self):
        single = loaded_fleet(1)
        sharded = loaded_fleet(8)
        probes = [
            KEYS[:20],
            [KEYS[399], KEYS[0], KEYS[211], KEYS[42]],
            [KEYS[5], b"missing-key", KEYS[9]],
            [b"all", b"misses", b"here"],
            [KEYS[17]],
        ]
        for keys in probes:
            assert sharded.multiget(list(keys)) == single.multiget(list(keys))

    def test_multiget_response_shape(self):
        fleet = loaded_fleet(4)
        keys = [KEYS[3], b"nope", KEYS[7]]
        response = fleet.multiget(keys)
        assert response.endswith(b"END\r\n")
        assert b"VALUE item:00003 " in response
        assert b"VALUE item:00007 " in response
        assert b"nope" not in response
        # Values come back in requested order.
        assert response.index(b"item:00003") < response.index(b"item:00007")

    def test_duplicate_keys_served_consistently(self):
        single = loaded_fleet(1)
        sharded = loaded_fleet(8)
        keys = [KEYS[1], KEYS[1], KEYS[2]]
        assert sharded.multiget(list(keys)) == single.multiget(list(keys))

    def test_one_scatter_batch_per_owning_shard(self):
        fleet = loaded_fleet(8)
        fleet.multiget(KEYS[:64])
        plan = fleet.ring.plan(KEYS[:64])
        assert fleet.metrics.scatter_batches == len(plan)
        assert fleet.metrics.scatter_keys == 64
        assert fleet.metrics.multigets == 1

    def test_empty_multiget_rejected(self):
        with pytest.raises(SdradError):
            Fleet(2).multiget([])


class TestMultigetWave:
    """Coalesced wave dispatch: one handle_batch per shard per wave."""

    PROBES = [
        KEYS[:20],
        [KEYS[399], KEYS[0], KEYS[211], KEYS[42]],
        [KEYS[5], b"missing-key", KEYS[9]],
        [b"all", b"misses", b"here"],
        [KEYS[17]],
        [KEYS[1], KEYS[1], KEYS[2]],
    ]

    def test_wave_bit_identical_to_sequential_single_shard(self):
        single = loaded_fleet(1)
        expected = [single.multiget(list(keys)) for keys in self.PROBES]
        for shards in (1, 8):
            fleet = loaded_fleet(shards)
            batches = [list(keys) for keys in self.PROBES]
            assert fleet.multiget_wave(batches) == expected

    def test_wave_matches_one_at_a_time_multiget(self):
        fleet = loaded_fleet(8)
        sequential = [fleet.multiget(list(keys)) for keys in self.PROBES]
        assert fleet.multiget_wave([list(k) for k in self.PROBES]) == sequential

    def test_one_activation_pipeline_per_shard(self):
        fleet = loaded_fleet(8)
        fleet.multiget_wave([KEYS[:32], KEYS[32:64], KEYS[64:96]])
        # One handle_batch call per shard touched -> one service entry per
        # shard, no matter how many multigets the wave carried.
        names = [name for name, _ in fleet.last_op_services]
        assert len(names) == len(set(names))
        assert fleet.metrics.multigets == 3
        assert fleet.metrics.scatter_keys == 96

    def test_wave_down_shard_degrades_to_misses(self):
        single = loaded_fleet(1)
        fleet = loaded_fleet(8)
        victim = fleet.ring.shard_for(KEYS[0])
        fleet.shards[victim].kill(10.0)
        batches = [list(KEYS[:24]), list(KEYS[24:48])]
        expected = [
            single.multiget(
                [k for k in keys if fleet.ring.shard_for(k) != victim]
            )
            for keys in batches
        ]
        assert fleet.multiget_wave([list(b) for b in batches]) == expected
        # Both multigets touched the dead shard, so both count as errors.
        assert fleet.metrics.errors == 2
        assert victim in fleet.last_op_failed

    def test_empty_wave_and_empty_batch(self):
        fleet = loaded_fleet(2)
        assert fleet.multiget_wave([]) == []
        with pytest.raises(SdradError):
            fleet.multiget_wave([[KEYS[0]], []])

    def test_route_cache_invalidated_by_failover(self):
        fleet = loaded_fleet(4)
        victim = fleet.ring.shard_for(KEYS[0])
        fleet.get(KEYS[0])  # warm the route cache through the old owner
        fleet.fail_over(victim)
        new_owner = fleet.ring.shard_for(KEYS[0])
        assert new_owner != victim
        before = fleet.metrics.per_shard_ops.get(new_owner, 0)
        fleet.get(KEYS[0])
        assert fleet.metrics.per_shard_ops[new_owner] == before + 1


class TestSingleKeyRouting:
    def test_set_get_delete_roundtrip(self):
        fleet = Fleet(4, seed=7)
        assert fleet.set(b"alpha", b"one") == b"STORED\r\n"
        assert fleet.get(b"alpha") == b"VALUE alpha 0 3\r\none\r\nEND\r\n"
        assert fleet.delete(b"alpha") == b"DELETED\r\n"
        assert fleet.get(b"alpha") == b"END\r\n"

    def test_ops_land_on_ring_owner(self):
        fleet = loaded_fleet(8)
        for key in KEYS[:32]:
            owner = fleet.ring.shard_for(key)
            before = fleet.metrics.per_shard_ops.get(owner, 0)
            fleet.get(key)
            assert fleet.metrics.per_shard_ops[owner] == before + 1

    def test_data_partitioned_not_replicated(self):
        fleet = loaded_fleet(8)
        assert fleet.total_items() == len(ITEMS)
        per_shard = [shard.store.item_count for shard in fleet.shards.values()]
        assert sum(1 for n in per_shard if n > 0) >= 6

    def test_availability_tracks_served_fraction(self):
        fleet = loaded_fleet(2)
        for key in KEYS[:10]:
            fleet.get(key)
        assert fleet.availability() == 1.0


class TestFailover:
    def test_dead_shard_fails_out_after_threshold(self):
        fleet = loaded_fleet(4)
        HealthMonitor(fleet, HealthConfig(failure_threshold=3))
        victim = fleet.ring.shard_for(KEYS[0])
        fleet.shards[victim].kill(10.0)
        misses = 0
        for key in KEYS:
            if fleet.ring.shard_for(key) == victim:
                fleet.get(key)
                misses += 1
            if victim not in fleet.ring:
                break
        assert victim not in fleet.ring
        assert misses == 3
        assert fleet.metrics.failovers == 1

    def test_failover_moves_only_victims_ranges(self):
        fleet = loaded_fleet(4)
        before = fleet.ring.assignment(KEYS)
        victim = fleet.ring.shard_for(KEYS[0])
        fleet.fail_over(victim)
        after = fleet.ring.assignment(KEYS)
        for key in KEYS:
            if before[key] != victim:
                assert after[key] == before[key]
            else:
                assert after[key] != victim

    def test_surviving_shards_keep_serving_after_failover(self):
        fleet = loaded_fleet(4)
        victim = fleet.ring.shard_for(KEYS[0])
        survivors_keys = [k for k in KEYS if fleet.ring.shard_for(k) != victim]
        fleet.shards[victim].kill(10.0)
        fleet.fail_over(victim)
        for key in survivors_keys[:50]:
            response = fleet.get(key)
            assert response.startswith(b"VALUE "), key

    def test_probe_rejoins_recovered_shard(self):
        fleet = loaded_fleet(4)
        monitor = HealthMonitor(fleet, HealthConfig(probe_interval=0.1))
        victim = "shard-2"
        fleet.shards[victim].kill(1.0)
        monitor.tick(0.2)
        assert victim not in fleet.ring
        fleet.clock.advance(2.0)  # outage elapses; supervisor restarts
        monitor.tick(0.4)
        assert victim in fleet.ring
        assert fleet.metrics.rejoins == 1
        assert fleet.shards[victim].restarts == 1
        # Rejoin restores the exact pre-failover placement.
        fresh = Fleet(4, seed=7)
        assert fleet.ring.assignment(KEYS) == fresh.ring.assignment(KEYS)

    def test_watchdog_quarantine_fails_shard_out(self):
        # Repeated faults on one shard's fleet connection trip the
        # shard-side watchdog; the probe sweep then fails the shard out.
        fleet = Fleet(2, seed=7)
        monitor = HealthMonitor(fleet)
        shard = fleet.shards["shard-0"]
        for _ in range(6):
            shard.watchdog.record_fault("lb")
        assert shard.is_quarantined
        monitor.tick(1.0)
        assert "shard-0" not in fleet.ring
        assert "shard-1" in fleet.ring

    def test_down_shard_keys_degrade_to_misses_in_multiget(self):
        single = loaded_fleet(1)
        fleet = loaded_fleet(8)
        victim = fleet.ring.shard_for(KEYS[0])
        fleet.shards[victim].kill(10.0)
        keys = KEYS[:40]
        expected_hits = [
            k for k in keys if fleet.ring.shard_for(k) != victim
        ]
        response = fleet.multiget(list(keys))
        assert response == single.multiget(list(expected_hits))
        assert fleet.metrics.errors == 1


class TestScaling:
    def test_add_shard_extends_ring(self):
        fleet = Fleet(2, seed=7)
        shard = fleet.add_shard()
        assert shard.name == "shard-2"
        assert len(fleet.ring) == 3

    def test_drain_removes_newest_never_last(self):
        fleet = Fleet(3, seed=7)
        assert fleet.drain_shard() == "shard-2"
        assert fleet.drain_shard() == "shard-1"
        assert fleet.drain_shard() is None
        assert fleet.ring.shards == ["shard-0"]

    def test_autoscaler_demand_sizing(self):
        scaler = Autoscaler(AutoscalerConfig(utilization_target=0.5))
        # 1000 req/s x 1 ms = 1 busy shard-second/s -> 2 shards at 50%.
        assert scaler.required_shards(1000.0, 1e-3) == 2
        assert scaler.required_shards(0.0, 1e-3) == 1

    def test_autoscaler_slo_breach_scales_up(self):
        scaler = Autoscaler(AutoscalerConfig(target_p99=1e-4, cooldown=0.0))
        assert scaler.evaluate(1.0, 2, 100.0, 1e-5, window_p99=5e-4) == 1

    def test_autoscaler_hysteresis_and_cooldown(self):
        cfg = AutoscalerConfig(target_p99=1e-3, cooldown=5.0)
        scaler = Autoscaler(cfg)
        # Over-provisioned and far under SLO: scale down.
        assert scaler.evaluate(10.0, 4, 10.0, 1e-5, window_p99=1e-5) == -1
        # Cooldown gates the next action.
        assert scaler.evaluate(11.0, 3, 10.0, 1e-5, window_p99=1e-5) == 0
        # Barely over-provisioned (required == count - 1): hold.
        assert scaler.evaluate(20.0, 2, 10.0, 1e-5, window_p99=1e-5) == 0

    def test_validation(self):
        with pytest.raises(SdradError):
            Fleet(0)
        with pytest.raises(ValueError):
            AutoscalerConfig(target_p99=0.0)
        with pytest.raises(ValueError):
            HealthConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            Fleet(1).shards["shard-0"].kill(0.0)


class TestObservability:
    def test_fleet_metrics_flow_to_registry(self):
        obs = Observability()
        fleet = Fleet(2, seed=7, obs=obs)
        HealthMonitor(fleet)
        fleet.set(b"k", b"v")
        fleet.get(b"k")
        fleet.fail_over("shard-1")
        fleet.rejoin("shard-1")
        registry = obs.registry
        assert registry.counter_total("app_requests_total") == 2
        assert registry.counter_total("fleet_failovers_total") == 1
        assert registry.counter_total("fleet_rejoins_total") == 1
        assert registry.gauge_value("fleet_shards") == 2
