"""Tests for confidentiality compartments (read-only cross-domain grants)."""

from __future__ import annotations

import pytest

from repro.errors import SdradError
from repro.sdrad.constants import DomainFlags
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.runtime import SdradRuntime


@pytest.fixture
def vault_setup(runtime):
    """A vault domain holding a secret, and a worker domain."""
    vault = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    worker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    secret_addr = runtime.copy_into(vault.udi, b"vault secret: hunter2")
    return runtime, vault, worker, secret_addr


class TestReadGrants:
    def test_granted_worker_can_read_vault(self, vault_setup):
        runtime, vault, worker, secret_addr = vault_setup
        result = runtime.execute(
            worker.udi,
            lambda h: h.load(secret_addr, 21),
            read_grants=[vault.udi],
        )
        assert result.ok
        assert result.value == b"vault secret: hunter2"

    def test_grant_is_read_only(self, vault_setup):
        runtime, vault, worker, secret_addr = vault_setup
        result = runtime.execute(
            worker.udi,
            lambda h: h.store(secret_addr, b"TAMPERED"),
            read_grants=[vault.udi],
        )
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION
        # vault contents untouched
        assert runtime.copy_out(vault.udi, secret_addr, 21) == b"vault secret: hunter2"

    def test_without_grant_reads_fault(self, vault_setup):
        runtime, vault, worker, secret_addr = vault_setup
        result = runtime.execute(worker.udi, lambda h: h.load(secret_addr, 21))
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_grant_expires_at_exit(self, vault_setup):
        runtime, vault, worker, secret_addr = vault_setup
        runtime.execute(
            worker.udi, lambda h: h.load(secret_addr, 4), read_grants=[vault.udi]
        )
        # next entry without the grant: access denied again
        result = runtime.execute(worker.udi, lambda h: h.load(secret_addr, 4))
        assert not result.ok

    def test_self_grant_rejected(self, vault_setup):
        runtime, vault, worker, _ = vault_setup
        with pytest.raises(SdradError, match="itself"):
            runtime.execute(worker.udi, lambda h: None, read_grants=[worker.udi])

    def test_unknown_grant_rejected(self, vault_setup):
        runtime, _, worker, _ = vault_setup
        from repro.errors import DomainNotFound

        with pytest.raises(DomainNotFound):
            runtime.execute(worker.udi, lambda h: None, read_grants=[999])

    def test_multiple_grants(self, runtime):
        vault_a = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        vault_b = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        worker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        addr_a = runtime.copy_into(vault_a.udi, b"AAAA")
        addr_b = runtime.copy_into(vault_b.udi, b"BBBB")

        def read_both(handle):
            return handle.load(addr_a, 4) + handle.load(addr_b, 4)

        result = runtime.execute(
            worker.udi, read_both, read_grants=[vault_a.udi, vault_b.udi]
        )
        assert result.value == b"AAAABBBB"

    def test_fault_in_granted_run_still_rewinds_worker_only(self, vault_setup):
        runtime, vault, worker, secret_addr = vault_setup

        def misbehave(handle):
            handle.load(secret_addr, 4)  # allowed
            handle.store(0, b"crash")  # then fault

        result = runtime.execute(
            worker.udi, misbehave, read_grants=[vault.udi]
        )
        assert not result.ok
        # vault untouched, worker rewound, both usable
        assert runtime.copy_out(vault.udi, secret_addr, 4) == b"vaul"
        assert runtime.execute(worker.udi, lambda h: "ok").value == "ok"

    def test_grants_work_with_key_virtualization(self):
        runtime = SdradRuntime(key_virtualization=True)
        vault = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        workers = [
            runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
            for _ in range(20)
        ]
        secret_addr = runtime.copy_into(vault.udi, b"shared-config")
        for worker in workers:
            result = runtime.execute(
                worker.udi,
                lambda h: h.load(secret_addr, 13),
                read_grants=[vault.udi],
            )
            assert result.ok and result.value == b"shared-config"

    def test_nested_execution_inner_lacks_outer_grants(self, vault_setup):
        runtime, vault, worker, secret_addr = vault_setup
        inner = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def outer_fn(handle):
            # outer can read the vault; the nested inner domain cannot
            assert handle.load(secret_addr, 4) == b"vaul"
            inner_result = runtime.execute(
                inner.udi, lambda h: h.load(secret_addr, 4)
            )
            return inner_result.ok

        result = runtime.execute(worker.udi, outer_fn, read_grants=[vault.udi])
        assert result.ok
        assert result.value is False  # inner read was denied


class TestGrantEvictionSafety:
    def test_vault_not_evicted_while_granted(self):
        """Nested binds inside a granted run must not recycle the vault's
        key out from under the reader."""
        runtime = SdradRuntime(key_virtualization=True)
        vault = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        secret_addr = runtime.copy_into(vault.udi, b"pinned secret")
        worker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        others = [
            runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
            for _ in range(20)
        ]

        def granted_run(handle):
            before = handle.load(secret_addr, 13)
            # thrash the key pool from inside the granted execution
            for other in others:
                runtime.execute(other.udi, lambda h: None)
            after = handle.load(secret_addr, 13)
            return bytes(before), bytes(after)

        result = runtime.execute(
            worker.udi, granted_run, read_grants=[vault.udi]
        )
        assert result.ok
        before, after = result.value
        assert before == after == b"pinned secret"
