"""Tests for the analytic (CTMC) availability models, including
cross-validation against the discrete-event simulation."""

from __future__ import annotations

import pytest

from repro.faultinj.campaign import PeriodicArrivals
from repro.resilience.markov import (
    MarkovChain,
    availability_from_rates,
    expected_yearly_downtime,
    steady_state_availability,
    two_replica_availability,
)
from repro.resilience.simulation import ServiceAvailabilitySimulation
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import MINUTES, YEARS
from repro.sim.cost import GIB

MODEL = RecoveryStrategyModel()


class TestRenewalIdentity:
    def test_mtbf_mttr(self):
        assert steady_state_availability(99.0, 1.0) == pytest.approx(0.99)

    def test_rates_form_equivalent(self):
        mtbf, mttr = 1000.0, 2.0
        a = steady_state_availability(mtbf, mttr)
        b = availability_from_rates(1.0 / mtbf, mttr)
        assert a == pytest.approx(b)

    def test_zero_fault_rate_is_perfect(self):
        assert availability_from_rates(0.0, 100.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_availability(0.0, 1.0)
        with pytest.raises(ValueError):
            steady_state_availability(1.0, -1.0)
        with pytest.raises(ValueError):
            availability_from_rates(-1.0, 1.0)

    def test_paper_point_analytically(self):
        """3 faults/year × 2-minute MTTR: analytic availability matches the
        paper's violation claim."""
        availability = availability_from_rates(3.0 / YEARS, 2 * MINUTES)
        assert availability < 0.99999
        availability = availability_from_rates(3.0 / YEARS, 3.5e-6)
        assert availability > 0.9999999


class TestMarkovChain:
    def test_two_state_chain(self):
        # up -> down at rate 1, down -> up at rate 9: availability 0.9
        chain = MarkovChain([[0.0, 1.0], [9.0, 0.0]], labels=["up", "down"])
        pi = chain.stationary_distribution()
        assert pi["up"] == pytest.approx(0.9)
        assert pi["down"] == pytest.approx(0.1)

    def test_distribution_sums_to_one(self):
        chain = MarkovChain(
            [[0, 2, 0], [1, 0, 1], [0, 3, 0]], labels=["a", "b", "c"]
        )
        pi = chain.stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_probability_helper(self):
        chain = MarkovChain([[0.0, 1.0], [1.0, 0.0]], labels=["up", "down"])
        assert chain.probability("up", "down") == pytest.approx(1.0)
        assert chain.probability("up") == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovChain([[0, 1, 0]], labels=["a"])
        with pytest.raises(ValueError):
            MarkovChain([[0, 1], [1, 0]], labels=["a"])


class TestTwoReplica:
    def test_duplexing_beats_simplex(self):
        lam = 10.0 / YEARS
        repair = 2 * MINUTES
        simplex = availability_from_rates(lam, repair)
        duplex = two_replica_availability(lam, repair)
        assert duplex > simplex

    def test_failover_window_costs_availability(self):
        lam = 10.0 / YEARS
        without = two_replica_availability(lam, 2 * MINUTES, failover_time=0.0)
        with_failover = two_replica_availability(
            lam, 2 * MINUTES, failover_time=2.0
        )
        assert with_failover < without

    def test_zero_fault_rate(self):
        assert two_replica_availability(0.0, 60.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            two_replica_availability(-1.0, 1.0)
        with pytest.raises(ValueError):
            two_replica_availability(1.0, 0.0)


class TestCrossValidation:
    """Simulation vs theory: the DES must agree with the closed form."""

    @pytest.mark.parametrize("faults", [1, 3, 10, 100])
    def test_restart_simulation_matches_analytic(self, faults):
        spec = MODEL.process_restart(10 * GIB)
        times = list(PeriodicArrivals(faults).times(YEARS))
        simulated = ServiceAvailabilitySimulation(spec, times).run().availability
        analytic = availability_from_rates(
            faults / YEARS, spec.downtime_per_fault
        )
        # the analytic model counts fault arrivals during repair (which the
        # simulation absorbs), so agreement is tight but not exact
        assert simulated == pytest.approx(analytic, abs=2e-6)

    def test_rewind_simulation_matches_analytic(self):
        spec = MODEL.sdrad_rewind()
        times = list(PeriodicArrivals(1000).times(YEARS))
        simulated = ServiceAvailabilitySimulation(spec, times).run().availability
        analytic = availability_from_rates(1000 / YEARS, 3.5e-6)
        assert simulated == pytest.approx(analytic, abs=1e-9)

    def test_expected_downtime_helper(self):
        downtime = expected_yearly_downtime(3.0, 2 * MINUTES)
        assert downtime == pytest.approx(360.0, rel=0.01)
