"""Model-based property tests: the KV store against a reference dict."""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.apps.kvstore import KVStore
from repro.sdrad.runtime import SdradRuntime

keys = st.binary(min_size=1, max_size=32).filter(
    lambda k: b" " not in k and b"\r" not in k and b"\n" not in k
)
values = st.binary(max_size=512)


class KVStoreMachine(RuleBasedStateMachine):
    """Random set/get/delete sequences checked against a dict model.

    Eviction makes strict equality impossible under memory pressure, so the
    arena is sized to hold everything the machine can insert; a separate
    deterministic test covers eviction (test_apps_kvstore).
    """

    inserted = Bundle("inserted")

    def __init__(self) -> None:
        super().__init__()
        runtime = SdradRuntime()
        self.store = KVStore(
            runtime, arena_size=2 * 1024 * 1024, slab_page_size=16 * 1024
        )
        self.model: dict[bytes, tuple[bytes, int]] = {}

    @rule(target=inserted, key=keys, value=values, flags=st.integers(0, 0xFFFF))
    def set_item(self, key, value, flags):
        self.store.set(key, value, flags)
        self.model[key] = (value, flags)
        return key

    @rule(key=inserted)
    def get_existing(self, key):
        if key in self.model:
            assert self.store.get(key) == self.model[key]
        else:
            assert self.store.get(key) is None

    @rule(key=keys)
    def get_arbitrary(self, key):
        expected = self.model.get(key)
        assert self.store.get(key) == expected

    @rule(key=inserted)
    def delete_item(self, key):
        existed = key in self.model
        assert self.store.delete(key) == existed
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush_all()
        self.model.clear()

    @invariant()
    def counts_agree(self):
        assert self.store.item_count == len(self.model)

    @invariant()
    def every_model_key_is_present(self):
        for key in self.model:
            assert self.store.contains(key)

    @invariant()
    def slab_metadata_clean(self):
        self.store.slabs.check()


TestKVStoreMachine = KVStoreMachine.TestCase
TestKVStoreMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
