"""Tests for the free-list allocator: correctness and corruption detection."""

from __future__ import annotations

import pytest

from repro.errors import AllocationFailure, HeapCorruption, InvalidFree, SdradError
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import (
    ALIGNMENT,
    GUARD_SIZE,
    HEADER_SIZE,
    FreeListAllocator,
)
from repro.memory.layout import PAGE_SIZE

ARENA = 16 * PAGE_SIZE


@pytest.fixture
def space() -> AddressSpace:
    s = AddressSpace(size=ARENA * 2)
    s.page_table.map_range(0, ARENA * 2, pkey=0)
    return s


@pytest.fixture
def heap(space: AddressSpace) -> FreeListAllocator:
    return FreeListAllocator(space, 0, ARENA)


class TestAllocation:
    def test_malloc_returns_aligned_payload(self, heap: FreeListAllocator):
        for size in (1, 7, 16, 100, 1000):
            addr = heap.malloc(size)
            assert addr % ALIGNMENT == 0

    def test_payloads_do_not_overlap(self, heap: FreeListAllocator):
        blocks = [(heap.malloc(64), 64) for _ in range(20)]
        regions = sorted((a, a + heap.payload_capacity(a)) for a, _ in blocks)
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_capacity_at_least_requested(self, heap: FreeListAllocator):
        addr = heap.malloc(33)
        assert heap.payload_capacity(addr) >= 33

    def test_data_survives_other_allocations(self, heap: FreeListAllocator, space):
        a = heap.malloc(32)
        space.store(a, b"A" * 32)
        b = heap.malloc(64)
        space.store(b, b"B" * 64)
        assert space.load(a, 32) == b"A" * 32

    def test_zero_size_rejected(self, heap: FreeListAllocator):
        with pytest.raises(SdradError):
            heap.malloc(0)

    def test_exhaustion_raises(self, heap: FreeListAllocator):
        with pytest.raises(AllocationFailure):
            heap.malloc(ARENA)

    def test_many_small_allocations_until_full(self, heap: FreeListAllocator):
        count = 0
        try:
            while True:
                heap.malloc(64)
                count += 1
        except AllocationFailure:
            pass
        expected_max = ARENA // (64 + HEADER_SIZE + GUARD_SIZE)
        assert count == pytest.approx(expected_max, rel=0.05)


class TestFree:
    def test_free_then_reuse(self, heap: FreeListAllocator):
        addr = heap.malloc(128)
        heap.free(addr)
        again = heap.malloc(128)
        assert again == addr  # first fit reuses the hole

    def test_double_free_detected(self, heap: FreeListAllocator):
        addr = heap.malloc(16)
        heap.free(addr)
        with pytest.raises(InvalidFree, match="double free"):
            heap.free(addr)

    def test_wild_free_detected(self, heap: FreeListAllocator):
        heap.malloc(16)
        with pytest.raises(InvalidFree):
            heap.free(12345)

    def test_free_all_returns_to_single_block(self, heap: FreeListAllocator):
        addrs = [heap.malloc(100) for _ in range(10)]
        for addr in addrs:
            heap.free(addr)
        stats = heap.stats()
        assert stats.live_blocks == 0
        assert stats.free_blocks == 1  # fully coalesced

    def test_coalesce_backward_and_forward(self, heap: FreeListAllocator):
        a = heap.malloc(64)
        b = heap.malloc(64)
        c = heap.malloc(64)
        heap.free(a)
        heap.free(c)
        heap.free(b)  # merges with both neighbours
        big = heap.malloc(200)  # only possible if coalesced
        assert big == a

    def test_alternating_free_leaves_holes(self, heap: FreeListAllocator):
        addrs = [heap.malloc(64) for _ in range(6)]
        for addr in addrs[::2]:
            heap.free(addr)
        stats = heap.stats()
        assert stats.live_blocks == 3
        assert stats.free_blocks >= 3


class TestCorruptionDetection:
    def test_overflow_smashes_guard(self, heap: FreeListAllocator, space):
        addr = heap.malloc(16)
        capacity = heap.payload_capacity(addr)
        space.store(addr, b"X" * (capacity + 4))
        with pytest.raises(HeapCorruption, match="guard"):
            heap.free(addr)

    def test_header_smash_detected_on_free(self, heap: FreeListAllocator, space):
        addr = heap.malloc(16)
        space.store(addr - HEADER_SIZE, b"\x00" * 4)  # wreck the magic
        with pytest.raises(HeapCorruption):
            heap.free(addr)

    def test_check_walks_whole_arena(self, heap: FreeListAllocator, space):
        a = heap.malloc(32)
        heap.malloc(32)
        heap.check()  # clean walk passes
        capacity = heap.payload_capacity(a)
        space.store(a, b"Y" * (capacity + 4))
        with pytest.raises(HeapCorruption):
            heap.check()

    def test_checksum_mismatch_detected(self, heap: FreeListAllocator, space):
        addr = heap.malloc(16)
        # flip the size field without fixing the checksum
        space.store(addr - HEADER_SIZE + 4, (9999).to_bytes(4, "little"))
        with pytest.raises(HeapCorruption):
            heap.free(addr)


class TestReset:
    def test_reset_discards_everything(self, heap: FreeListAllocator):
        for _ in range(5):
            heap.malloc(64)
        heap.reset()
        stats = heap.stats()
        assert stats.live_blocks == 0
        assert stats.allocated_bytes == 0
        # arena is usable again
        assert heap.malloc(64)

    def test_reset_without_scrub_keeps_bytes(self, heap, space):
        addr = heap.malloc(16)
        space.store(addr, b"SECRETSECRETSECR")
        heap.reset(scrub=False)
        # pages were not scrubbed — old bytes are still there (as garbage)
        assert b"SECRET" in space.raw_load(addr, 16)

    def test_reset_with_scrub_zeroes_arena(self, heap, space):
        addr = heap.malloc(16)
        space.store(addr, b"SECRETSECRETSECR")
        pages = heap.reset(scrub=True)
        assert pages == ARENA // PAGE_SIZE
        assert space.raw_load(addr, 16) == b"\x00" * 16

    def test_lazy_reset_scrubs_on_reallocate(self, heap, space):
        addr = heap.malloc(16)
        space.store(addr, b"SECRETSECRETSECR")
        pages = heap.reset(scrub=True, lazy=True)
        assert pages == 0  # nothing touched at discard time
        assert b"SECRET" in space.raw_load(addr, 16)  # stale until reuse
        again = heap.malloc(16)
        capacity = heap.payload_capacity(again)
        assert space.raw_load(again, capacity) == b"\x00" * capacity
        assert heap.lazy_scrubbed_bytes >= capacity

    def test_reset_recovers_from_corruption(self, heap, space):
        addr = heap.malloc(16)
        capacity = heap.payload_capacity(addr)
        space.store(addr, b"X" * (capacity + 4))
        heap.reset()
        heap.check()  # pristine again


class TestStats:
    def test_alloc_free_counters(self, heap: FreeListAllocator):
        a = heap.malloc(16)
        heap.malloc(16)
        heap.free(a)
        stats = heap.stats()
        assert stats.total_allocs == 2
        assert stats.total_frees == 1
        assert stats.live_blocks == 1

    def test_peak_tracking(self, heap: FreeListAllocator):
        a = heap.malloc(1024)
        heap.free(a)
        heap.malloc(16)
        assert heap.stats().peak_allocated_bytes >= 1024

    def test_utilisation_fraction(self, heap: FreeListAllocator):
        heap.malloc(ARENA // 4)
        assert 0.2 < heap.stats().utilisation < 0.35

    def test_arena_too_small_rejected(self, space):
        with pytest.raises(SdradError):
            FreeListAllocator(space, 0, HEADER_SIZE + GUARD_SIZE)
