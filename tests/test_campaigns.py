"""Tests for repro.campaigns: the statistical machinery, seeded
determinism and checkpoint/resume, the fitted model, the MCDM decision
layer, and the closed loop that re-measures a recommendation live.

The acceptance bar from the issue: a campaign spanning >=3 fault classes
x >=2 domains x >=2 backends must converge, recommend, apply the
assignment to the fleet driver, and re-measure availability and
per-recovery carbon inside the model's own confidence intervals --
deterministically.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignConfig,
    CampaignSampler,
    InjectionPhase,
    apply_assignment,
    clopper_pearson,
    fit_campaign_model,
    recommend,
    run_campaign,
)
from repro.campaigns.decision import (
    PolicyInputs,
    carbon_per_fault,
    downtime_per_fault,
)
from repro.campaigns.stats import (
    ConfidenceInterval,
    mat_identity,
    mat_inverse,
    mat_mul,
    mat_solve,
    normal_quantile,
)
from repro.faultinj.models import FaultKind

FIXTURES = Path(__file__).parent / "fixtures"


def small_config(**overrides) -> CampaignConfig:
    """The campaign-smoke factor space: 2 kinds x 1 domain x 1 phase x
    2 backends, 8 rounds — the same config CI's golden job runs."""
    defaults = dict(
        kinds=(FaultKind.STACK_SMASH, FaultKind.HEAP_OVERFLOW),
        domains=("shard-0",),
        phases=(InjectionPhase.ENTRY,),
        backends=("mpk", "cheri"),
        max_rounds=8,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


@pytest.fixture(scope="module")
def small_report():
    """One full closed-loop run of the smoke config, shared read-only."""
    return run_campaign(small_config())


# ----------------------------------------------------------------------
# Statistical primitives
# ----------------------------------------------------------------------


class TestStats:
    def test_clopper_pearson_known_values(self):
        # 0/10 at 95%: hi is the exact 1 - (alpha/2)^(1/n) "rule of three"
        ci = clopper_pearson(0, 10)
        assert ci.lo == 0.0
        assert ci.hi == pytest.approx(1.0 - 0.025 ** 0.1, abs=1e-6)
        # 10/10 mirrors it
        ci = clopper_pearson(10, 10)
        assert ci.hi == 1.0
        assert ci.lo == pytest.approx(0.025 ** 0.1, abs=1e-6)
        # 5/10: the textbook (0.187, 0.813)
        ci = clopper_pearson(5, 10)
        assert ci.lo == pytest.approx(0.1871, abs=2e-4)
        assert ci.hi == pytest.approx(0.8129, abs=2e-4)

    def test_clopper_pearson_zero_trials_is_vacuous(self):
        ci = clopper_pearson(0, 0)
        assert (ci.lo, ci.hi) == (0.0, 1.0)

    def test_clopper_pearson_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            clopper_pearson(5, 3)
        with pytest.raises(ValueError):
            clopper_pearson(1, 10, confidence=1.0)

    def test_normal_quantile(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-5)

    def test_mat_solve_and_inverse(self):
        a = [[2.0, 1.0], [1.0, 3.0]]
        x = mat_solve(a, [[5.0], [10.0]])
        assert x[0][0] == pytest.approx(1.0)
        assert x[1][0] == pytest.approx(3.0)
        prod = mat_mul(a, mat_inverse(a))
        for i, row in enumerate(mat_identity(2)):
            for j, want in enumerate(row):
                assert prod[i][j] == pytest.approx(want, abs=1e-12)

    def test_interval_contains_and_overlaps(self):
        a = ConfidenceInterval(0.2, 0.3, 0.4)
        b = ConfidenceInterval(0.35, 0.5, 0.6)
        c = ConfidenceInterval(0.45, 0.5, 0.6)
        assert a.contains(0.25) and not a.contains(0.45)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_round_plan_is_pure_function_of_seed(self):
        cfg = small_config()
        a, b = CampaignSampler(cfg), CampaignSampler(small_config())
        for stratum in cfg.strata():
            for round_index in range(3):
                assert a.round_plan(stratum, round_index) == b.round_plan(
                    stratum, round_index
                )

    def test_different_seed_different_plan(self):
        cfg0, cfg1 = small_config(seed=0), small_config(seed=1)
        a, b = CampaignSampler(cfg0), CampaignSampler(cfg1)
        plans0 = [a.round_plan(s, 0) for s in cfg0.strata()]
        plans1 = [b.round_plan(s, 0) for s in cfg1.strata()]
        assert plans0 != plans1

    def test_full_report_is_byte_identical(self):
        dumps = []
        for _ in range(2):
            report = run_campaign(small_config(), run_fleet=False)
            dumps.append(json.dumps(report.as_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_seed_reaches_the_coefficients(self):
        a = run_campaign(small_config(seed=0), validate=False)
        b = run_campaign(small_config(seed=7), validate=False)
        assert a.model.as_dict() != b.model.as_dict()


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestResume:
    def test_resume_mid_campaign_is_exact(self):
        cfg = small_config()
        partial = CampaignSampler(cfg)
        partial.step()
        partial.step()
        # The checkpoint survives a JSON round trip (it's what a driver
        # would persist between processes).
        state = json.loads(json.dumps(partial.state()))

        resumed = CampaignSampler.resume(small_config(), state)
        resumed.run()
        baseline = CampaignSampler(small_config())
        baseline.run()

        assert resumed.rounds_run == baseline.rounds_run
        assert json.dumps(resumed.strata_table(), sort_keys=True) == json.dumps(
            baseline.strata_table(), sort_keys=True
        )
        # ... and identity extends through the model fit.
        fit_resumed = fit_campaign_model(cfg, resumed.accumulators)
        fit_base = fit_campaign_model(cfg, baseline.accumulators)
        assert fit_resumed.as_dict() == fit_base.as_dict()

    def test_resume_through_runner(self):
        cfg = small_config()
        partial = CampaignSampler(cfg)
        partial.step()
        resumed = CampaignSampler.resume(
            cfg, json.loads(json.dumps(partial.state()))
        )
        report = run_campaign(sampler=resumed, run_fleet=False)
        baseline = run_campaign(small_config(), run_fleet=False)
        assert json.dumps(report.as_dict(), sort_keys=True) == json.dumps(
            baseline.as_dict(), sort_keys=True
        )

    def test_resume_rejects_seed_mismatch(self):
        partial = CampaignSampler(small_config(seed=0))
        partial.step()
        with pytest.raises(ValueError):
            CampaignSampler.resume(small_config(seed=1), partial.state())

    def test_resume_rejects_unknown_stratum(self):
        partial = CampaignSampler(small_config())
        partial.step()
        state = partial.state()
        state["strata"]["bogus|shard-9|entry|mpk"] = next(
            iter(state["strata"].values())
        )
        with pytest.raises(ValueError):
            CampaignSampler.resume(small_config(), state)


# ----------------------------------------------------------------------
# Sampler behaviour
# ----------------------------------------------------------------------


class TestSampler:
    def test_stopping_rule_honours_floor_and_cap(self, small_report):
        cfg = small_report.config
        for acc in small_report.sampler.accumulators.values():
            assert acc.trials >= cfg.min_per_stratum
            assert acc.trials <= cfg.max_per_stratum
            assert acc.trials == len(acc.observations)
            assert 0 <= acc.contained <= acc.trials

    def test_strata_table_shape(self, small_report):
        table = small_report.sampler.strata_table()
        assert len(table) == len(small_report.config.strata())
        for row in table:
            assert 0.0 <= row["containment"]["lo"] <= row["containment"]["hi"] <= 1.0
            assert row["halfwidth"] >= 0.0

    def test_backend_reaches_the_observations(self):
        # Cross-domain faults are where the backends differ: the same
        # stratum records MPK pkey violations under mpk and capability
        # violations under cheri.
        sampler = CampaignSampler(
            small_config(kinds=(FaultKind.CROSS_DOMAIN_READ,), max_rounds=1)
        )
        sampler.step()
        violations = {"mpk": set(), "cheri": set()}
        for acc in sampler.accumulators.values():
            for obs in acc.observations:
                if obs.violation is not None:
                    violations[acc.stratum.backend].add(obs.violation)
        assert violations["mpk"] == {"ProtectionKeyViolation"}
        assert violations["cheri"] == {"CapabilityViolation"}


# ----------------------------------------------------------------------
# Model fit
# ----------------------------------------------------------------------


class TestModel:
    def test_predictions_are_sane(self, small_report):
        cfg, model = small_report.config, small_report.model
        for stratum in cfg.strata():
            p = model.predict_containment(stratum)
            assert 0.0 <= p.lo <= p.mid <= p.hi <= 1.0
            r = model.predict_recovery(stratum)
            assert r.lo <= r.mid <= r.hi
            assert r.mid > 0.0

    def test_interval_floor_applies(self, small_report):
        # The simulator's cost models are deterministic; without the
        # relative-half-width floor the latency fit would claim ~zero
        # uncertainty. With it, every interval is at least 5% wide.
        cfg, model = small_report.config, small_report.model
        floor = cfg.min_relative_halfwidth
        for stratum in cfg.strata():
            r = model.predict_recovery(stratum)
            assert r.halfwidth >= floor * abs(r.mid) * (1.0 - 1e-9)

    def test_model_tracks_observed_containment(self, small_report):
        # The logistic fit must stay statistically compatible with each
        # stratum's own exact interval.
        cfg, model = small_report.config, small_report.model
        for acc in small_report.sampler.accumulators.values():
            observed = acc.interval(cfg.confidence)
            predicted = model.predict_containment(acc.stratum)
            assert predicted.overlaps(observed), acc.stratum.key

    def test_fit_requires_samples(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            fit_campaign_model(cfg, CampaignSampler(cfg).accumulators)


# ----------------------------------------------------------------------
# Decision layer
# ----------------------------------------------------------------------


def _inputs() -> PolicyInputs:
    return PolicyInputs(
        containment=ConfidenceInterval(0.6, 0.7, 0.8),
        recovery_seconds=ConfidenceInterval(3e-6, 3.5e-6, 4e-6),
        rewind_gco2e_per_recovery=ConfidenceInterval(5e-8, 7e-8, 9e-8),
        restart_downtime=114.58,
        restart_gco2e_per_fault=2.3125,
    )


class TestDecisionFormulas:
    def test_rewind_beats_restart_on_downtime(self):
        cfg, inputs = CampaignConfig(), _inputs()
        d_rw = downtime_per_fault("rewind", 0.7, 3.5e-6, inputs, cfg)
        d_rst = downtime_per_fault("restart", 0.7, 3.5e-6, inputs, cfg)
        assert d_rw < d_rst
        # the uncontained fraction still pays the restart
        assert d_rw == pytest.approx(0.7 * 3.5e-6 + 0.3 * 114.58)

    def test_retry_charges_the_backoff(self):
        inputs = _inputs()
        with_backoff = downtime_per_fault(
            "retry", 0.7, 3.5e-6, inputs, CampaignConfig()
        )
        without = downtime_per_fault(
            "retry", 0.7, 3.5e-6, inputs, CampaignConfig(retry_backoff=0.0)
        )
        cfg = CampaignConfig()
        persistent = 1.0 - cfg.transient_fraction
        expected_backoff = cfg.transient_fraction * cfg.retry_backoff + (
            persistent * cfg.retry_backoff * (2.0 ** cfg.retry_budget - 1.0)
        )
        assert with_backoff - without == pytest.approx(0.7 * expected_backoff)

    def test_backoff_is_carbon_free(self):
        # Backoff is idle wait: retry's carbon must not move with it.
        inputs = _inputs()
        a = carbon_per_fault("retry", 0.7, 7e-8, inputs, CampaignConfig())
        b = carbon_per_fault(
            "retry", 0.7, 7e-8, inputs, CampaignConfig(retry_backoff=1.0)
        )
        assert a == b
        assert a > carbon_per_fault("rewind", 0.7, 7e-8, inputs, CampaignConfig())

    def test_restart_is_the_baseline(self):
        cfg, inputs = CampaignConfig(), _inputs()
        assert downtime_per_fault("restart", 0.9, 1e-6, inputs, cfg) == 114.58
        assert carbon_per_fault("restart", 0.9, 1e-6, inputs, cfg) == 2.3125

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            downtime_per_fault("reboot", 0.5, 1e-6, _inputs(), CampaignConfig())


class TestRecommendation:
    def test_scoreboard_covers_every_policy(self, small_report):
        assignment = small_report.assignment
        for domain in small_report.config.domains:
            policies = {s.policy for s in assignment.scores if s.domain == domain}
            assert policies == {"rewind", "retry", "quarantine", "restart"}

    def test_rewind_recommended_and_feasible(self, small_report):
        assignment = small_report.assignment
        assert assignment.feasible
        assert assignment.policies == {"shard-0": "rewind"}
        assert assignment.backend == "mpk"

    def test_restart_is_infeasible_at_the_defaults(self, small_report):
        # The paper's core contrast: whole-process restart at 10 GiB blows
        # both the availability SLO and the carbon budget.
        cfg = small_report.config
        for score in small_report.assignment.scores:
            if score.policy != "restart":
                continue
            assert not score.feasible
            assert score.availability.mid < cfg.slo
            assert score.carbon_g_per_year.mid > cfg.carbon_budget_g_per_year

    def test_pareto_front_contains_the_choice(self, small_report):
        assignment = small_report.assignment
        for domain, policy in assignment.policies.items():
            front = assignment.pareto_front(domain)
            assert front
            assert policy in {s.policy for s in front}

    def test_recommend_is_deterministic(self, small_report):
        again = recommend(
            small_report.model,
            small_report.config,
            small_report.sampler.accumulators,
        )
        assert again.as_dict() == small_report.assignment.as_dict()


# ----------------------------------------------------------------------
# The closed loop
# ----------------------------------------------------------------------


class TestClosedLoop:
    def test_validation_matches_the_model(self, small_report):
        validation = small_report.validation
        assert validation is not None and validation.ok
        for dv in validation.domains:
            assert dv.availability_ok
            assert dv.predicted_availability.overlaps(dv.measured_interval)
            assert dv.gco2e_ok
            if dv.measured_gco2e_per_recovery is not None:
                assert dv.predicted_gco2e_per_recovery.contains(
                    dv.measured_gco2e_per_recovery
                )

    def test_assignment_reaches_the_fleet(self, small_report):
        fleet = small_report.validation.fleet
        assert fleet["requested"]["shard-0"] == "rewind"
        for domain, policy in small_report.assignment.policies.items():
            assert fleet["applied"][domain] == policy
        assert fleet["availability"] > 0.99
        assert fleet["served"] > 0

    def test_apply_assignment_builds_live_policies(self, small_report):
        policies = apply_assignment(
            small_report.assignment, small_report.config
        )
        assert set(policies) == set(small_report.config.domains)
        for policy in policies.values():
            assert hasattr(policy, "decide")

    def test_acceptance_full_factor_space(self):
        """The issue's bar: >=3 fault classes x >=2 domains x >=2 backends,
        closed loop, deterministic verdict."""
        cfg = CampaignConfig()
        assert len(cfg.kinds) >= 3
        assert len(cfg.domains) >= 2
        assert len(cfg.backends) >= 2
        report = run_campaign(cfg)
        assert report.ok
        assert report.assignment.feasible
        assert report.validation.ok
        assert set(report.assignment.policies) == set(cfg.domains)
        applied = report.validation.fleet["applied"]
        for domain, policy in report.assignment.policies.items():
            assert applied[domain] == policy


# ----------------------------------------------------------------------
# Golden fixture (mirrors CI's campaign-smoke job)
# ----------------------------------------------------------------------


class TestGoldenFixture:
    def test_small_campaign_matches_golden(self, small_report):
        want = json.loads(
            (FIXTURES / "campaign_golden.json").read_text()
        )
        got = json.loads(json.dumps(small_report.as_dict(), sort_keys=True))
        assert got == want
