"""App-layer instrumentation tests: spans and metrics per server, and the
cardinal rule that observability never changes what the apps do — same
responses, same virtual time, obs on or off.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.apps.nginx_server import NginxServer
from repro.apps.openssl_service import TlsServer
from repro.apps.tls import make_client_hello, make_heartbeat_request
from repro.obs import Observability
from repro.obs.report import run_demo_workload
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import consistency_check

ATTACK_LONG_KEY = b"get " + b"K" * 270 + b"\r\n"
NGINX_ATTACK = b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\nHost: h\r\n\r\n"


class TestMemcachedSpans:
    def test_request_span_and_status(self):
        runtime = SdradRuntime(obs=Observability())
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c0")
        server.handle("c0", b"set k 0 0 1\r\nv\r\n")
        server.handle("c0", ATTACK_LONG_KEY)
        obs = runtime.obs
        spans = obs.buffer.of_name("memcached.request")
        assert [s.status for s in spans] == ["ok", "fault"]
        assert all(s.attrs["client"] == "c0" for s in spans)
        # The domain execution nests inside its request span.
        executes = obs.buffer.of_name("domain.execute")
        assert executes[0].parent_id == spans[0].span_id
        assert obs.registry.counter_total(
            "app_requests_total", app="memcached", status="fault"
        ) == 1
        assert consistency_check(runtime) == []

    def test_latency_lands_in_histogram(self):
        runtime = SdradRuntime(obs=Observability())
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c0")
        before = runtime.clock.now
        server.handle("c0", b"set k 0 0 1\r\nv\r\n")
        elapsed = runtime.clock.now - before
        hist = runtime.obs.registry.histogram(
            "app_request_latency_seconds", app="memcached"
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(elapsed)


class TestNginxSpans:
    def test_batch_pipeline_spans(self):
        runtime = SdradRuntime(obs=Observability())
        server = NginxServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c0")
        ok = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n"
        responses = server.handle_batch("c0", [ok, ok, ok])
        assert len(responses) == 3
        obs = runtime.obs
        [batch] = obs.buffer.of_name("nginx.batch")
        assert batch.status == "ok" and batch.attrs["size"] == 3
        assert obs.registry.counter_total("app_requests_total", app="nginx") == 3
        assert obs.registry.counter_total("app_batches_total", app="nginx") == 1
        assert consistency_check(runtime) == []

    def test_faulting_request_span(self):
        runtime = SdradRuntime(obs=Observability())
        server = NginxServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c0")
        response = server.handle("c0", NGINX_ATTACK)
        assert response.startswith(b"HTTP/1.1 500 ")
        [span] = runtime.obs.buffer.of_name("nginx.request")
        assert span.status == "fault"


class TestTlsSpans:
    def test_record_spans_with_fault_status(self):
        runtime = SdradRuntime(obs=Observability())
        server = TlsServer(
            runtime,
            isolation=IsolationMode.PER_CONNECTION,
            domain_heap_size=16 * 1024,
            domain_stack_size=16 * 1024,
        )
        server.connect("c0")
        server.handle_record("c0", make_client_hello())
        server.handle_record("c0", make_heartbeat_request(b"ping"))
        # A lying length field drives the Heartbleed over-read past the
        # (small) domain heap → MPK fault → rewind.
        server.handle_record(
            "c0", make_heartbeat_request(b"x", declared=60000)
        )
        obs = runtime.obs
        spans = obs.buffer.of_name("tls.record")
        assert [s.status for s in spans] == ["ok", "ok", "fault"]
        assert obs.registry.counter_total(
            "app_requests_total", app="tls", status="fault"
        ) == 1
        assert consistency_check(runtime) == []


class TestObsIsPureObservation:
    """Same bytes, same virtual time, with observability on or off."""

    @staticmethod
    def _drive(server: MemcachedServer) -> "list[bytes]":
        server.connect("c0")
        out = [
            server.handle("c0", b"set k 0 0 2\r\nhi\r\n"),
            server.handle("c0", b"get k\r\n"),
            server.handle("c0", ATTACK_LONG_KEY),
            server.handle("c0", b"get k\r\n"),
        ]
        out.extend(server.handle_batch("c0", [b"get k\r\n", b"stats\r\n"]))
        return out

    def test_responses_and_virtual_time_identical(self):
        plain_runtime = SdradRuntime()
        plain = self._drive(
            MemcachedServer(plain_runtime, isolation=IsolationMode.PER_CONNECTION)
        )
        observed_runtime = SdradRuntime(obs=Observability())
        observed = self._drive(
            MemcachedServer(observed_runtime, isolation=IsolationMode.PER_CONNECTION)
        )
        assert plain == observed
        assert plain_runtime.clock.now == observed_runtime.clock.now


class TestDemoWorkload:
    def test_demo_is_deterministic_and_consistent(self):
        a = run_demo_workload(requests=80, clients=3)
        b = run_demo_workload(requests=80, clients=3)
        assert a.obs.registry.snapshot() == b.obs.registry.snapshot()
        assert a.runtime.clock.now == b.runtime.clock.now
        assert a.obs.registry.counter_total("app_requests_total") == 80
        assert a.obs.registry.counter_total("sdrad_rewinds_total") > 0
        assert consistency_check(a.runtime) == []
        assert a.obs.buffer.tree_violations() == []

    def test_demo_validates_arguments(self):
        with pytest.raises(ValueError):
            run_demo_workload(requests=0)
        with pytest.raises(ValueError):
            run_demo_workload(clients=0)
