"""Property-based tests for allocator invariants under random op sequences."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import AllocationFailure
from repro.memory.address_space import AddressSpace
from repro.memory.allocator import GUARD_SIZE, HEADER_SIZE, FreeListAllocator

ARENA = 64 * 1024


def fresh_heap() -> tuple[AddressSpace, FreeListAllocator]:
    space = AddressSpace(size=ARENA)
    space.page_table.map_range(0, ARENA, pkey=0)
    return space, FreeListAllocator(space, 0, ARENA)


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=40)
)
def test_alloc_all_then_free_all_restores_arena(sizes):
    _, heap = fresh_heap()
    addrs = []
    for size in sizes:
        try:
            addrs.append(heap.malloc(size))
        except AllocationFailure:
            break
    for addr in addrs:
        heap.free(addr)
    stats = heap.stats()
    assert stats.live_blocks == 0
    assert stats.free_blocks == 1  # full coalescing
    heap.check()


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=1024)),
        min_size=1,
        max_size=80,
    )
)
def test_random_alloc_free_interleaving_keeps_heap_consistent(ops):
    space, heap = fresh_heap()
    live: list[int] = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            try:
                addr = heap.malloc(size)
            except AllocationFailure:
                continue
            # fill exactly to capacity: must never corrupt
            space.store(addr, b"\xaa" * heap.payload_capacity(addr))
            live.append(addr)
        else:
            heap.free(live.pop(size % len(live)))
    heap.check()  # arena walk must always pass
    assert heap.stats().live_blocks == len(live)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=512), min_size=2, max_size=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_payload_data_never_aliases(sizes, seed):
    """Writing each block's full capacity must not disturb any other block."""
    space, heap = fresh_heap()
    blocks = {}
    for i, size in enumerate(sizes):
        try:
            addr = heap.malloc(size)
        except AllocationFailure:
            break
        pattern = bytes([(seed + i) % 256]) * heap.payload_capacity(addr)
        space.store(addr, pattern)
        blocks[addr] = pattern
    for addr, pattern in blocks.items():
        assert space.load(addr, len(pattern)) == pattern
    heap.check()


class AllocatorMachine(RuleBasedStateMachine):
    """Stateful fuzz of malloc/free/check against a model of live blocks."""

    def __init__(self) -> None:
        super().__init__()
        self.space, self.heap = fresh_heap()
        self.live: dict[int, int] = {}  # payload addr -> capacity

    @rule(size=st.integers(min_value=1, max_value=4096))
    def alloc(self, size):
        try:
            addr = self.heap.malloc(size)
        except AllocationFailure:
            return
        capacity = self.heap.payload_capacity(addr)
        assert capacity >= size
        # no overlap with any live block
        for other, other_capacity in self.live.items():
            assert addr + capacity <= other - HEADER_SIZE or other + other_capacity + GUARD_SIZE <= addr - HEADER_SIZE + HEADER_SIZE or not (
                other <= addr < other + other_capacity
            )
        self.live[addr] = capacity

    @precondition(lambda self: self.live)
    @rule(index=st.integers(min_value=0, max_value=10**6))
    def free(self, index):
        addr = sorted(self.live)[index % len(self.live)]
        self.heap.free(addr)
        del self.live[addr]

    @invariant()
    def heap_walk_is_clean(self):
        self.heap.check()
        assert self.heap.stats().live_blocks == len(self.live)


TestAllocatorStateMachine = AllocatorMachine.TestCase
TestAllocatorStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
