"""Tests for region snapshots."""

from __future__ import annotations

import pytest

from repro.errors import SdradError
from repro.memory.address_space import AddressSpace
from repro.memory.snapshot import capture, differs, restore


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace(size=64 * 1024)


class TestSnapshot:
    def test_capture_copies_bytes(self, space: AddressSpace):
        space.raw_store(100, b"hello world")
        snap = capture(space, 100, 11)
        assert snap.data == b"hello world"
        assert snap.size == 11

    def test_capture_is_immutable_copy(self, space: AddressSpace):
        space.raw_store(0, b"before")
        snap = capture(space, 0, 6)
        space.raw_store(0, b"after!")
        assert snap.data == b"before"

    def test_restore_writes_back(self, space: AddressSpace):
        space.raw_store(0, b"original")
        snap = capture(space, 0, 8)
        space.raw_store(0, b"mutated!")
        restore(space, snap)
        assert space.raw_load(0, 8) == b"original"

    def test_zero_size_rejected(self, space: AddressSpace):
        with pytest.raises(SdradError):
            capture(space, 0, 0)

    def test_checksum_stable(self, space: AddressSpace):
        space.raw_store(0, b"payload")
        a = capture(space, 0, 7).checksum()
        b = capture(space, 0, 7).checksum()
        assert a == b

    def test_checksum_changes_with_content(self, space: AddressSpace):
        space.raw_store(0, b"payload")
        a = capture(space, 0, 7).checksum()
        space.raw_store(0, b"Payload")
        b = capture(space, 0, 7).checksum()
        assert a != b


class TestDiffs:
    def test_no_diff_when_unchanged(self, space: AddressSpace):
        space.raw_store(0, b"constant")
        snap = capture(space, 0, 8)
        assert differs(space, snap) == []

    def test_diff_reports_changed_offsets(self, space: AddressSpace):
        space.raw_store(0, b"abcdef")
        snap = capture(space, 0, 6)
        space.raw_store(2, b"XY")
        assert differs(space, snap) == [2, 3]

    def test_diff_relative_to_base(self, space: AddressSpace):
        space.raw_store(1000, b"abcd")
        snap = capture(space, 1000, 4)
        space.raw_store(1003, b"Z")
        assert differs(space, snap) == [3]
