"""Tests for the SDRaD-FFI sandbox: marshalling, violations, fallbacks."""

from __future__ import annotations

import pytest

from repro.errors import SandboxViolation
from repro.ffi.fallback import fallback_call, fallback_value
from repro.ffi.marshal import MarshalStats, marshal_args, roundtrip_check
from repro.ffi.sandbox import Sandbox
from repro.ffi.serialization import get_serializer
from repro.sdrad.runtime import SdradRuntime


@pytest.fixture
def sandbox(runtime: SdradRuntime) -> Sandbox:
    return Sandbox(runtime)


class TestCleanCalls:
    def test_pure_function(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert add.stats.calls == 1
        assert add.stats.violations == 0

    def test_kwargs_cross_boundary(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def greet(name, *, prefix="Dr."):
            return f"{prefix} {name}"

        assert greet("Who", prefix="Mr.") == "Mr. Who"

    def test_complex_values(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def transform(data):
            return {"doubled": [x * 2 for x in data["items"]], "blob": b"\x00\x01"}

        out = transform({"items": [1, 2, 3]})
        assert out == {"doubled": [2, 4, 6], "blob": b"\x00\x01"}

    def test_arguments_are_copies_not_references(self, sandbox: Sandbox):
        """The sandbox must see a serialized copy, like a real FFI call."""
        original = {"list": [1, 2]}

        @sandbox.sandboxed
        def mutate(data):
            data["list"].append(99)
            return data["list"]

        result = mutate(original)
        assert result == [1, 2, 99]
        assert original == {"list": [1, 2]}  # caller's object untouched

    def test_each_function_gets_own_domain(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def f():
            return 1

        @sandbox.sandboxed
        def g():
            return 2

        f(), g()
        assert f._udi != g._udi

    def test_domain_reused_across_calls(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def f():
            return 1

        f(), f()
        domains = len(sandbox.runtime.domains())
        f()
        assert len(sandbox.runtime.domains()) == domains

    def test_charges_virtual_time(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def f():
            return 1

        before = sandbox.runtime.clock.now
        f()
        assert sandbox.runtime.clock.now > before


class TestViolations:
    def test_memory_fault_raises_sandbox_violation(self, sandbox: Sandbox):
        @sandbox.sandboxed(wants_handle=True)
        def unsafe(handle):
            handle.store(0, b"null write")

        with pytest.raises(SandboxViolation):
            unsafe()
        assert unsafe.stats.violations == 1

    def test_fallback_value_applied(self, sandbox: Sandbox):
        @sandbox.sandboxed(fallback=fallback_value("default"), wants_handle=True)
        def unsafe(handle):
            handle.store(0, b"x")

        assert unsafe() == "default"
        assert unsafe.stats.fallbacks_applied == 1

    def test_fallback_callable_gets_report_and_args(self, sandbox: Sandbox):
        seen = {}

        def alternate(report, value):
            seen["mechanism"] = report.mechanism.value
            seen["value"] = value
            return value * 2

        @sandbox.sandboxed(fallback=fallback_call(alternate), wants_handle=True)
        def unsafe(handle, value):
            handle.store(0, b"x")

        assert unsafe(21) == 42
        assert seen == {"mechanism": "page-fault", "value": 21}

    def test_none_is_a_valid_fallback_value(self, sandbox: Sandbox):
        @sandbox.sandboxed(fallback=fallback_value(None), wants_handle=True)
        def unsafe(handle):
            handle.store(0, b"x")

        assert unsafe() is None

    def test_process_survives_violations(self, sandbox: Sandbox):
        @sandbox.sandboxed(fallback=fallback_value(-1), wants_handle=True)
        def unsafe(handle, should_fault):
            if should_fault:
                handle.store(0, b"x")
            return 0

        assert unsafe(True) == -1
        assert unsafe(False) == 0  # domain was rewound and reused
        assert unsafe(True) == -1

    def test_heap_overflow_inside_sandbox(self, sandbox: Sandbox):
        @sandbox.sandboxed(fallback=fallback_value(b""), wants_handle=True)
        def parse(handle, data):
            buf = handle.malloc(8)
            handle.store(buf, data)  # overflows for len(data) > capacity
            out = handle.load(buf, min(len(data), 8))
            handle.free(buf)
            return bytes(out)

        assert parse(b"ok") == b"ok"
        assert parse(b"A" * 100) == b""
        assert parse.stats.mechanisms.get("heap-integrity", 0) >= 1

    def test_mechanisms_recorded(self, sandbox: Sandbox):
        @sandbox.sandboxed(fallback=fallback_value(0), wants_handle=True)
        def unsafe(handle):
            handle.store(sandbox.runtime.root.heap_base, b"x")

        unsafe()
        assert unsafe.stats.mechanisms == {"pkey-violation": 1}

    def test_retries_reexecute_transparently(self, sandbox: Sandbox):
        calls = []

        @sandbox.sandboxed(retries=3, wants_handle=True)
        def flaky(handle):
            calls.append(1)
            if len(calls) < 2:
                handle.store(0, b"x")
            return "recovered"

        assert flaky() == "recovered"
        assert flaky.stats.retries == 1


class TestSerializerChoice:
    @pytest.mark.parametrize("name", ["bincode", "msgpack", "json", "pickle"])
    def test_each_serializer_works_end_to_end(self, runtime, name):
        sandbox = Sandbox(runtime, serializer=name)

        @sandbox.sandboxed
        def echo(value):
            return value

        payload = {"k": [1, 2.5, "s", b"b", None, True]}
        assert echo(payload) == payload

    def test_per_function_override(self, sandbox: Sandbox):
        @sandbox.sandboxed(serializer="json")
        def f(x):
            return x

        assert f.serializer.name == "json"

    def test_json_is_slower_than_bincode(self, runtime):
        """The E6 shape: text serialization costs more virtual time."""
        payload = {"data": "x" * 50000}
        times = {}
        for name in ("bincode", "json"):
            rt = SdradRuntime()
            sandbox = Sandbox(rt, serializer=name)

            @sandbox.sandboxed
            def echo(value):
                return value

            before = rt.clock.now
            echo(payload)
            times[name] = rt.clock.now - before
        assert times["json"] > times["bincode"]


class TestFreshDomainMode:
    def test_fresh_domain_per_call(self, sandbox: Sandbox):
        @sandbox.sandboxed(fresh_domain=True)
        def f():
            return 1

        baseline = len(sandbox.runtime.domains())
        f()
        f()
        assert len(sandbox.runtime.domains()) == baseline  # created and destroyed

    def test_fresh_domain_costs_more(self, runtime):
        sandbox = Sandbox(runtime)

        @sandbox.sandboxed
        def persistent():
            return 1

        @sandbox.sandboxed(fresh_domain=True)
        def ephemeral():
            return 1

        persistent()  # domain created lazily here
        start = runtime.clock.now
        persistent()
        persistent_cost = runtime.clock.now - start
        start = runtime.clock.now
        ephemeral()
        ephemeral_cost = runtime.clock.now - start
        assert ephemeral_cost > persistent_cost


class TestResultSizeHardening:
    def test_oversized_result_refused(self, sandbox: Sandbox):
        @sandbox.sandboxed(max_result_bytes=1024)
        def exfiltrate():
            return b"\x00" * 100_000

        with pytest.raises(SandboxViolation, match="exceeds limit"):
            exfiltrate()
        assert exfiltrate.stats.violations == 1

    def test_oversized_result_uses_fallback(self, sandbox: Sandbox):
        @sandbox.sandboxed(max_result_bytes=1024, fallback=fallback_value(b""))
        def exfiltrate():
            return b"\x00" * 100_000

        assert exfiltrate() == b""

    def test_normal_results_unaffected(self, sandbox: Sandbox):
        @sandbox.sandboxed(max_result_bytes=4096)
        def normal():
            return b"\x01" * 100

        assert normal() == b"\x01" * 100

    def test_no_limit_by_default(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def big():
            return b"\x02" * 100_000

        assert len(big()) == 100_000


class TestSandboxManagement:
    def test_close_releases_domains(self, runtime):
        with Sandbox(runtime) as sandbox:

            @sandbox.sandboxed
            def f():
                return 1

            f()
            assert len(runtime.domains()) == 2  # root + sandbox domain
        assert len(runtime.domains()) == 1

    def test_wrapper_preserves_metadata(self, sandbox: Sandbox):
        @sandbox.sandboxed
        def documented():
            """Docstring survives."""
            return 1

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__


class TestMarshalHelpers:
    def test_marshal_args_stages_copy(self, runtime, domain):
        stats = MarshalStats(serializer="bincode")
        call = marshal_args(
            runtime, domain.udi, get_serializer("bincode"), (1, "two"), {"k": 3}, stats
        )
        assert call.args == (1, "two")
        assert call.kwargs == {"k": 3}
        assert stats.args_bytes > 0
        assert call.encoded_size == stats.args_bytes

    def test_roundtrip_check(self):
        serializer = get_serializer("bincode")
        assert roundtrip_check(serializer, {"a": [1, b"x"]})
        assert not roundtrip_check(serializer, object())


class TestSandboxAtScale:
    def test_dozens_of_sandboxed_functions_with_keyvirt(self):
        """More sandboxed functions than physical keys: needs virtualisation."""
        runtime = SdradRuntime(key_virtualization=True)
        sandbox = Sandbox(runtime)
        functions = []
        for i in range(30):
            @sandbox.sandboxed(heap_size=32 * 1024)
            def fn(x, _i=i):
                return x + _i

            functions.append(fn)
        for i, fn in enumerate(functions):
            assert fn(100) == 100 + i
        # and again, exercising rebinds
        for i, fn in enumerate(functions):
            assert fn(200) == 200 + i
        assert runtime.keys.stats.evictions > 0

    def test_sandbox_exhausts_keys_without_virtualization(self):
        from repro.errors import OutOfDomains

        runtime = SdradRuntime()
        sandbox = Sandbox(runtime)
        functions = []
        for i in range(20):
            @sandbox.sandboxed(heap_size=32 * 1024)
            def fn(_i=i):
                return _i

            functions.append(fn)
        with pytest.raises(OutOfDomains):
            for fn in functions:  # domains are created lazily on first call
                fn()
