"""Tests for the exception hierarchy: classification and messages."""

from __future__ import annotations

import pytest

from repro.errors import (
    AllocationFailure,
    DetectedCorruption,
    FfiError,
    HeapCorruption,
    InvalidFree,
    MemoryError_,
    PermissionFault,
    ProtectionKeyViolation,
    ReproError,
    SandboxViolation,
    SdradError,
    SegmentationFault,
    ServiceUnavailable,
    StackCanaryViolation,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            SegmentationFault(0),
            ProtectionKeyViolation(0, 1),
            StackCanaryViolation("f", 1, 2),
            HeapCorruption(0, "x"),
            SdradError("x"),
            SandboxViolation("f", ValueError()),
            ServiceUnavailable("svc", 1.0),
        ):
            assert isinstance(exc, ReproError)

    def test_hardware_vs_software_split(self):
        assert isinstance(SegmentationFault(0), MemoryError_)
        assert isinstance(ProtectionKeyViolation(0, 1), MemoryError_)
        assert isinstance(StackCanaryViolation("f", 1, 2), DetectedCorruption)
        assert isinstance(HeapCorruption(0, "x"), DetectedCorruption)
        assert not isinstance(StackCanaryViolation("f", 1, 2), MemoryError_)

    def test_builtin_memoryerror_not_shadowed(self):
        assert not issubclass(MemoryError_, MemoryError)

    def test_ffi_errors(self):
        violation = SandboxViolation("decode", RuntimeError("boom"))
        assert isinstance(violation, FfiError)
        assert violation.function == "decode"
        assert isinstance(violation.cause, RuntimeError)


class TestMessages:
    def test_segfault_mentions_address(self):
        assert "0xdead" in str(SegmentationFault(0xDEAD))

    def test_pkey_violation_mentions_key_and_access(self):
        text = str(ProtectionKeyViolation(0x100, 7, access="store"))
        assert "pkey=7" in text and "store" in text

    def test_permission_fault_mentions_perms(self):
        assert "'r--'" in str(PermissionFault(0x10, "store", "r--"))

    def test_canary_shows_both_values(self):
        text = str(StackCanaryViolation("parse", 0xAA00, 0xBB00))
        assert "0xaa00" in text and "0xbb00" in text and "parse" in text

    def test_invalid_free_reason(self):
        assert "double free" in str(InvalidFree(0x20, "double free"))

    def test_allocation_failure_is_plain(self):
        assert "oom" in str(AllocationFailure("oom"))

    def test_service_unavailable_gives_eta(self):
        text = str(ServiceUnavailable("memcached", 12.5))
        assert "memcached" in text and "12.5" in text


class TestAttributes:
    def test_fault_attributes_preserved(self):
        fault = ProtectionKeyViolation(0x40, 3, access="load")
        assert fault.address == 0x40
        assert fault.pkey == 3
        assert fault.access == "load"

    def test_heap_corruption_detail(self):
        fault = HeapCorruption(0x80, "guard smashed")
        assert fault.address == 0x80
        assert fault.detail == "guard smashed"
