"""Tests for the long-horizon service availability simulation."""

from __future__ import annotations

import pytest

from repro.faultinj.campaign import PeriodicArrivals, PoissonArrivals
from repro.resilience.simulation import (
    ServiceAvailabilitySimulation,
    compare_strategies,
)
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import MINUTES, YEARS
from repro.sim.cost import GIB
from repro.sim.rng import RngFactory

MODEL = RecoveryStrategyModel()


def year_times(count: int) -> list[float]:
    return list(PeriodicArrivals(count).times(YEARS))


class TestRestartSimulation:
    def test_downtime_matches_arithmetic(self):
        spec = MODEL.process_restart(10 * GIB)
        outcome = ServiceAvailabilitySimulation(spec, year_times(3)).run()
        assert outcome.faults_recovered == 3
        assert outcome.downtime == pytest.approx(3 * spec.downtime_per_fault)

    def test_three_restarts_violate_five_nines(self):
        spec = MODEL.process_restart(10 * GIB)
        outcome = ServiceAvailabilitySimulation(spec, year_times(3)).run()
        assert not outcome.meets_five_nines

    def test_two_restarts_meet_five_nines(self):
        spec = MODEL.process_restart(10 * GIB)
        outcome = ServiceAvailabilitySimulation(spec, year_times(2)).run()
        assert outcome.meets_five_nines

    def test_requests_dropped_during_downtime(self):
        spec = MODEL.process_restart(10 * GIB)
        outcome = ServiceAvailabilitySimulation(
            spec, year_times(3), request_rate=100.0
        ).run()
        expected = 100.0 * outcome.downtime
        assert outcome.requests_dropped == pytest.approx(expected)
        assert outcome.requests_served == pytest.approx(
            outcome.requests_offered - expected
        )


class TestRewindSimulation:
    def test_massive_fault_count_still_five_nines(self):
        spec = MODEL.sdrad_rewind()
        outcome = ServiceAvailabilitySimulation(spec, year_times(1_000)).run()
        assert outcome.meets_five_nines
        assert outcome.downtime == pytest.approx(1000 * 3.5e-6)

    def test_each_fault_loses_one_request(self):
        spec = MODEL.sdrad_rewind()
        outcome = ServiceAvailabilitySimulation(
            spec, year_times(10), request_rate=100.0
        ).run()
        assert outcome.requests_dropped == pytest.approx(10, abs=0.1)


class TestFaultAbsorption:
    def test_faults_during_restart_absorbed(self):
        spec = MODEL.process_restart(10 * GIB)
        # second fault lands while the first restart is still in progress
        times = [100.0, 110.0, 100000.0]
        outcome = ServiceAvailabilitySimulation(spec, times).run()
        assert outcome.faults_recovered == 2
        assert outcome.faults_absorbed == 1
        assert outcome.downtime == pytest.approx(2 * spec.downtime_per_fault)

    def test_downtime_truncated_at_horizon(self):
        spec = MODEL.process_restart(10 * GIB)
        horizon = 1000.0
        outcome = ServiceAvailabilitySimulation(spec, [999.0], horizon=horizon).run()
        assert outcome.downtime == pytest.approx(1.0)

    def test_out_of_horizon_faults_ignored(self):
        spec = MODEL.sdrad_rewind()
        outcome = ServiceAvailabilitySimulation(
            spec, [10.0, 2 * YEARS], horizon=YEARS
        ).run()
        assert outcome.faults_injected == 1


class TestComparison:
    def test_compare_strategies_ordering(self):
        specs = MODEL.all_for(10 * GIB)
        outcomes = compare_strategies(specs, year_times(3))
        by_name = {o.strategy: o for o in outcomes}
        assert by_name["sdrad-rewind"].downtime < by_name["replicated-2x"].downtime
        assert (
            by_name["replicated-2x"].downtime
            < by_name["process-restart"].downtime
        )
        assert (
            by_name["process-restart"].downtime
            < by_name["container-restart"].downtime
        )

    def test_same_schedule_for_all(self):
        specs = MODEL.all_for(GIB)
        outcomes = compare_strategies(specs, year_times(5))
        assert all(o.faults_injected == 5 for o in outcomes)

    def test_poisson_schedule_runs(self):
        rng = RngFactory(3).stream("faults")
        times = list(PoissonArrivals(10 / YEARS, rng).times(YEARS))
        spec = MODEL.process_restart(GIB)
        outcome = ServiceAvailabilitySimulation(spec, times).run()
        assert outcome.faults_injected == len(times)


class TestValidation:
    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            ServiceAvailabilitySimulation(MODEL.sdrad_rewind(), [], horizon=0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            ServiceAvailabilitySimulation(
                MODEL.sdrad_rewind(), [], request_rate=-1
            )

    def test_no_faults_is_perfect(self):
        outcome = ServiceAvailabilitySimulation(MODEL.sdrad_rewind(), []).run()
        assert outcome.availability == 1.0
        assert outcome.downtime == 0.0


class TestTraceIndependence:
    def test_downtime_computed_from_trace_not_bookkeeping(self):
        """The trace is the independent witness of the availability math."""
        spec = MODEL.process_restart(10 * GIB)
        sim = ServiceAvailabilitySimulation(spec, year_times(2))
        outcome = sim.run()
        trace_downtime = sim.tracer.downtime(YEARS)
        assert outcome.downtime == pytest.approx(trace_downtime)
        assert sim.tracer.count("fault.detected") == 2
        assert sim.tracer.count("service.down") == 2
        assert sim.tracer.count("service.up") == 2
