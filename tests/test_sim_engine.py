"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append(1))
        engine.schedule(1.0, lambda: order.append(2))
        engine.schedule(1.0, lambda: order.append(3))
        engine.run()
        assert order == [1, 2, 3]

    def test_clock_advances_to_event_times(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_run_until_advances_clock_without_events(self):
        engine = Engine()
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_events_can_schedule_events(self):
        engine = Engine()
        log = []

        def first():
            log.append(("first", engine.now))
            engine.schedule(2.0, lambda: log.append(("second", engine.now)))

        engine.schedule(1.0, first)
        engine.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestProcesses:
    def test_process_sleeps(self):
        engine = Engine()
        log = []

        def worker():
            log.append(engine.now)
            yield 1.5
            log.append(engine.now)
            yield 0.5
            log.append(engine.now)

        engine.spawn(worker())
        engine.run()
        assert log == [0.0, 1.5, 2.0]

    def test_process_result_captured(self):
        engine = Engine()

        def worker():
            yield 1.0
            return 42

        process = engine.spawn(worker())
        engine.run()
        assert process.finished
        assert process.result == 42

    def test_process_join(self):
        engine = Engine()
        log = []

        def child():
            yield 2.0
            return "done"

        def parent():
            result = yield engine.spawn(child())
            log.append((engine.now, result))

        engine.spawn(parent())
        engine.run()
        assert log == [(2.0, "done")]

    def test_join_already_finished_process(self):
        engine = Engine()
        log = []

        def child():
            yield 0.5
            return 7

        child_process = engine.spawn(child())

        def parent():
            yield 1.0  # child finishes first
            value = yield child_process
            log.append(value)

        engine.spawn(parent())
        engine.run()
        assert log == [7]

    def test_process_error_propagates(self):
        engine = Engine()

        def bad():
            yield 1.0
            raise RuntimeError("boom")

        engine.spawn(bad())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run()

    def test_daemon_error_is_contained(self):
        engine = Engine()
        log = []

        def bad():
            yield 1.0
            raise RuntimeError("boom")

        def good():
            yield 2.0
            log.append("ok")

        process = engine.spawn(bad(), daemon=True)
        engine.spawn(good())
        engine.run()
        assert log == ["ok"]
        assert isinstance(process.error, RuntimeError)

    def test_negative_yield_rejected(self):
        engine = Engine()

        def bad():
            yield -1.0

        engine.spawn(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_unsupported_yield_rejected(self):
        engine = Engine()

        def bad():
            yield "nonsense"

        engine.spawn(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_daemon_negative_yield_contained(self):
        # A daemon's bad yield is captured like any other daemon error —
        # it must not crash the event loop.
        engine = Engine()
        log = []

        def bad():
            yield -1.0

        def good():
            yield 2.0
            log.append("ok")

        process = engine.spawn(bad(), daemon=True)
        engine.spawn(good())
        engine.run()
        assert log == ["ok"]
        assert isinstance(process.error, SimulationError)
        assert process.finished

    def test_daemon_unsupported_yield_contained(self):
        engine = Engine()

        def bad():
            yield object()

        process = engine.spawn(bad(), daemon=True)
        engine.run()
        assert isinstance(process.error, SimulationError)

    def test_join_errored_process_raises_in_waiter(self):
        # A join on a failed process must not look like a None result: the
        # error is thrown into the waiter at the join point.
        engine = Engine()
        log = []

        def bad():
            yield 1.0
            raise RuntimeError("boom")

        def parent():
            child = engine.spawn(bad(), daemon=True)
            try:
                yield child
            except RuntimeError as exc:
                log.append(("caught", str(exc), engine.now))

        engine.spawn(parent())
        engine.run()
        assert log == [("caught", "boom", 1.0)]

    def test_join_already_errored_process_raises_in_waiter(self):
        engine = Engine()
        log = []

        def bad():
            yield 0.5
            raise RuntimeError("late join")

        child = engine.spawn(bad(), daemon=True)

        def parent():
            yield 1.0  # child has already failed by now
            try:
                yield child
            except RuntimeError:
                log.append("caught")

        engine.spawn(parent())
        engine.run()
        assert log == ["caught"]

    def test_uncaught_join_error_fails_waiter_too(self):
        engine = Engine()

        def bad():
            yield 1.0
            raise RuntimeError("boom")

        def parent():
            yield engine.spawn(bad(), daemon=True)

        engine.spawn(parent())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run()

    def test_spawn_with_delay(self):
        engine = Engine()
        log = []

        def worker():
            log.append(engine.now)
            yield 0.0

        engine.spawn(worker(), delay=5.0)
        engine.run()
        assert log == [5.0]

    def test_many_processes_interleave(self):
        engine = Engine()
        log = []

        def worker(name, period):
            for _ in range(3):
                yield period
                log.append((name, engine.now))

        engine.spawn(worker("a", 1.0))
        engine.spawn(worker("b", 1.5))
        engine.run()
        # at t=3.0 both fire; b's event was scheduled earlier (at t=1.5)
        # so insertion order puts it first
        assert log == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]

    def test_run_not_reentrant(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            engine.run()


class TestResumableRuns:
    def test_run_until_then_continue(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        engine.run()  # drain the rest
        assert fired == [1, 2]
        assert engine.now == 10.0

    def test_scheduling_between_runs(self):
        engine = Engine()
        fired = []
        engine.run(until=3.0)
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [4.0]
