"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["availability"])
        assert args.dataset_gib == 10.0
        assert args.faults == 3


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "rewound in" in out
        assert "alive" in out

    def test_recovery(self, capsys):
        assert main(["recovery", "--dataset-gib", "10"]) == 0
        out = capsys.readouterr().out
        assert "sdrad-rewind" in out
        assert "3.5 µs" in out
        assert "process-restart" in out

    def test_availability(self, capsys):
        assert main(["availability", "--faults", "3"]) == 0
        out = capsys.readouterr().out
        assert "NO" in out  # restart violates five nines at 3 faults
        assert "sdrad-rewind" in out

    def test_availability_low_faults_all_pass(self, capsys):
        assert main(["availability", "--faults", "1"]) == 0
        out = capsys.readouterr().out
        assert "NO" not in out

    def test_lca(self, capsys):
        assert main(["lca", "--faults", "3", "--rebound", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "kWh/yr" in out
        assert "net saving" in out
        assert "rebound 30%" in out

    def test_crossover(self, capsys):
        assert main(["crossover", "--dataset-gib", "10"]) == 0
        out = capsys.readouterr().out
        assert "five-nines" in out
        assert "rewind" in out

    def test_fleet_live_run(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--shards", "2",
                    "--keyspace", "5000",
                    "--rate", "1000",
                    "--horizon", "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet run: 2 shard(s)" in out
        assert "availability" in out
        assert "latency p50/p99/p999" in out
        assert "ledger[sdrad-rewind]" in out
        assert "ledger[process-restart]" in out

    def test_fleet_failover_run(self, capsys):
        assert (
            main(
                [
                    "fleet",
                    "--shards", "2",
                    "--keyspace", "5000",
                    "--rate", "2000",
                    "--horizon", "0.4",
                    "--kill-at", "0.1",
                    "--outage", "0.1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failovers/rejoins    1/1" in out

    def test_fleet_scenarios_table(self, capsys):
        assert main(["fleet", "--scenarios"]) == 0
        out = capsys.readouterr().out
        assert "telecom-edge" in out
        assert "smart-grid" in out

    def test_inject_single_kind(self, capsys):
        assert main(["inject", "--kind", "stack-smash", "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "injected 4 fault(s)" in out
        assert "stack-canary" in out
        assert "containment 100%" in out

    def test_inject_all_kinds(self, capsys):
        assert main(["inject", "--kind", "all", "--count", "1"]) == 0
        out = capsys.readouterr().out
        assert "injected 9 fault(s)" in out

    def test_inject_backend(self, capsys):
        assert main(
            ["inject", "--kind", "cross-domain-read", "--backend", "cheri"]
        ) == 0
        out = capsys.readouterr().out
        assert "containment 100%" in out
        assert "CapabilityViolation" in out

    def test_obs(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        assert main(
            [
                "obs",
                "--requests", "60",
                "--clients", "2",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "sdrad-rewind" in out and "process-restart" in out
        assert "J/req" in out and "mgCO2e/req" in out
        assert "consistency check: ok" in out
        assert trace.read_text().count("\n") > 0
        assert "app_requests_total" in metrics.read_text()

    def test_obs_sampled(self, capsys):
        assert main(["obs", "--requests", "40", "--sampling", "0.25"]) == 0
        assert "sampling=0.25" in capsys.readouterr().out

    def test_backends_table(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "mpk" in out and "cheri" in out and "sfi" in out
        assert "unbounded" in out  # cheri/sfi have no domain ceiling
        assert "15" in out  # mpk does

    @pytest.mark.parametrize("backend", ["mpk", "cheri", "sfi"])
    def test_backends_demo_contains(self, capsys, backend):
        assert main(["backends", "--demo", backend]) == 0
        out = capsys.readouterr().out
        assert f"containment demo on backend {backend!r}" in out
        assert "ok=False" in out
        assert "b'victim secret'" in out
        assert "alive" in out

    def test_backends_demo_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["backends", "--demo", "segments"])

    def test_module_entry_point(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "recovery"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "sdrad-rewind" in completed.stdout


class TestCampaignCommand:
    """The campaign subcommand end to end (small smoke-sized factor space)."""

    SMOKE = (
        "kinds=stack-smash,heap-overflow;domains=1;"
        "phases=entry;backends=mpk,cheri"
    )

    def test_campaign_json(self, capsys):
        import json

        code = main(
            [
                "campaign",
                "--strata",
                self.SMOKE,
                "--max-rounds",
                "8",
                "--no-validate",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["validation"] is None
        assert report["assignment"]["policies"] == {"shard-0": "rewind"}
        assert len(report["strata"]) == 4

    def test_campaign_human_output(self, capsys):
        code = main(
            ["campaign", "--strata", self.SMOKE, "--max-rounds", "8",
             "--no-validate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "*rewind" in out
        assert "result: ok" in out

    def test_campaign_strata_parsing(self):
        args = build_parser().parse_args(
            ["campaign", "--strata", "domains=3;backends=sfi"]
        )
        assert args.strata == {
            "domains": ("shard-0", "shard-1", "shard-2"),
            "backends": ("sfi",),
        }

    @pytest.mark.parametrize(
        "spec", ["bogus", "colors=red", "kinds=flux-capacitor"]
    )
    def test_campaign_bad_strata_rejected_at_parse_time(self, spec):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--strata", spec])
