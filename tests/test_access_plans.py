"""Adversarial tests for compiled access plans and batched coalescing.

A plan is a batched TLB verdict, and like the re-entry tickets it is only
sound because every event that could change the verdict shoots it down:
mprotect, pkey retag, ``pkey_free``, explicit TLB flush, PKRU switch
(dormancy, not death), and domain destroy. Each event gets a scenario
that *goes wrong* if its shootdown hook — and only that hook — is
deleted: a stale plan would then read through revoked permissions, a
recycled key, or a freed domain's heap. The ablation tests pin the pure
fast-path contract — ``AddressSpace(access_plans=False)`` must be
bit-identical in responses, virtual time and architectural counters —
and the coalescing tests pin fault identity for the batched paths that
stay honest even with plans off.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.errors import (
    MemoryError_,
    PermissionFault,
    ProtectionKeyViolation,
    SegmentationFault,
)
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE
from repro.memory.mpk import PkruRegister
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime


def _mapped_space(pages: int = 4, pkey: int = 0) -> AddressSpace:
    space = AddressSpace(size=PAGE_SIZE * 16)
    space.page_table.map_range(0, pages * PAGE_SIZE, pkey=pkey)
    return space


class TestPlanFastPath:
    """A live plan serves accesses with exact counter semantics."""

    def test_checked_plan_roundtrip_and_counters(self):
        space = _mapped_space()
        plan = space.plans.checked_plan(0, 2 * PAGE_SIZE, "rw")
        assert plan is not None and plan.is_valid()
        loads, stores, hits = space.loads, space.stores, space.tlb_hits
        plan.store(64, b"hello world")
        assert plan.load(64, 11) == b"hello world"
        plan.store_u32(128, 0xDEADBEEF)
        assert plan.load_u32(128) == 0xDEADBEEF
        plan.store_u64(136, 2**53 + 7)
        assert plan.load_u64(136) == 2**53 + 7
        # Every fast-path access counts as one load/store and one TLB hit
        # (the plan *is* a cached verdict).
        assert space.loads == loads + 3
        assert space.stores == stores + 3
        assert space.tlb_hits == hits + 6
        assert space.faults == 0

    def test_plan_is_cached_per_pkru_and_run(self):
        space = _mapped_space()
        first = space.plans.checked_plan(0, PAGE_SIZE, "r")
        again = space.plans.checked_plan(0, PAGE_SIZE, "r")
        other = space.plans.checked_plan(PAGE_SIZE, PAGE_SIZE, "r")
        assert first is again
        assert other is not first
        assert space.plans.hits == 1
        assert space.plans.built == 2

    def test_probe_failure_returns_none_without_faulting(self):
        space = _mapped_space(pages=2)
        faults = space.faults
        # Run extends into an unmapped page: no plan, no fault recorded.
        assert space.plans.checked_plan(0, 4 * PAGE_SIZE, "r") is None
        # Pages tagged with a key the current PKRU denies: same story.
        pkey = space.pkeys.alloc()
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, pkey)
        assert space.plans.checked_plan(PAGE_SIZE, PAGE_SIZE, "r") is None
        assert space.faults == faults

    def test_out_of_window_access_falls_back(self):
        space = _mapped_space()
        space.store(2 * PAGE_SIZE + 8, b"outside")
        plan = space.plans.checked_plan(0, PAGE_SIZE, "rw")
        # An address outside the compiled window takes the checked path
        # and still succeeds — a plan narrows nothing, it only speeds up.
        assert plan.load(2 * PAGE_SIZE + 8, 7) == b"outside"
        with pytest.raises(SegmentationFault):
            plan.load(PAGE_SIZE * 40, 4)


class TestMprotectShootdown:
    """``protect_range`` must kill every plan or a write-plan outlives
    a read-only downgrade of its pages."""

    def test_write_plan_dies_on_readonly_downgrade(self):
        space = _mapped_space()
        plan = space.plans.checked_plan(0, 2 * PAGE_SIZE, "rw")
        plan.store(64, b"before")
        shootdowns = space.plans.shootdowns
        space.page_table.protect_range(
            0, 4 * PAGE_SIZE, readable=True, writable=False
        )
        assert space.plans.shootdowns == shootdowns + 1
        assert not plan.is_valid()
        # The dead plan falls back to the checked path, which raises the
        # byte-identical fault the plan-off build would raise.
        with pytest.raises(PermissionFault):
            plan.store(64, b"after")
        assert space.faults == 1
        assert plan.load(64, 6) == b"before"  # reads still allowed

    def test_fallback_fault_matches_plan_off_twin(self):
        def provoke(space):
            plan_or_space = (
                space.plans.checked_plan(0, PAGE_SIZE, "rw")
                if space.plans is not None
                else space
            )
            plan_or_space.store(64, b"x" * 8)
            space.page_table.protect_range(
                0, 4 * PAGE_SIZE, readable=True, writable=False
            )
            try:
                plan_or_space.store(64, b"y" * 8)
            except PermissionFault as exc:
                return str(exc), space.faults, space.loads, space.stores

        on = provoke(_mapped_space())
        off_space = AddressSpace(size=PAGE_SIZE * 16, access_plans=False)
        off_space.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
        off = provoke(off_space)
        assert on == off


class TestRetagShootdown:
    """``pkey_mprotect`` retags must kill plans — the pages now belong to
    a key the compiling PKRU may not hold."""

    def test_plan_dies_when_pages_move_to_foreign_key(self):
        space = _mapped_space()
        plan = space.plans.checked_plan(0, PAGE_SIZE, "rw")
        plan.store(0, b"mine")
        foreign = space.pkeys.alloc()
        space.page_table.tag_range(0, 4 * PAGE_SIZE, foreign)
        assert not plan.is_valid()
        # Default PKRU denies the foreign key: the fallback faults exactly
        # as the per-access path would. A stale plan reading through the
        # old verdict would silently alias another owner's pages.
        with pytest.raises(ProtectionKeyViolation):
            plan.load(0, 4)
        with pytest.raises(ProtectionKeyViolation):
            plan.store(0, b"evil")


class TestPkeyFreeShootdown:
    """Key recycling flushes the TLB and must take every plan with it."""

    def test_unrelated_pkey_free_kills_plans(self):
        space = _mapped_space()
        plan = space.plans.checked_plan(0, PAGE_SIZE, "rw")
        plan.store(8, b"payload")
        shootdowns = space.plans.shootdowns
        pkey = space.pkeys.alloc()
        space.pkeys.free(pkey)
        assert space.plans.shootdowns == shootdowns + 1
        assert not plan.is_valid()
        # Pages are untouched, so the fallback still succeeds — and a
        # fresh plan can be compiled for the same run.
        assert plan.load(8, 7) == b"payload"
        rebuilt = space.plans.checked_plan(0, PAGE_SIZE, "rw")
        assert rebuilt is not None and rebuilt is not plan

    def test_explicit_tlb_flush_kills_plans(self):
        space = _mapped_space()
        plan = space.plans.checked_plan(0, PAGE_SIZE, "r")
        assert plan.is_valid()
        space.tlb_flush()
        assert not plan.is_valid()


class TestPkruSwitchDormancy:
    """WRPKRU makes foreign plans *dormant*, not dead — mirroring the
    per-PKRU TLB verdict caches they anchor to."""

    def test_plan_sleeps_under_foreign_pkru_and_wakes_on_return(self):
        space = _mapped_space()
        pkey = space.pkeys.alloc()
        space.page_table.tag_range(0, 2 * PAGE_SIZE, pkey)
        space.pkru.grant(pkey)
        granted = space.pkru.value
        plan = space.plans.checked_plan(0, PAGE_SIZE, "rw")
        plan.store(16, b"domain-data")
        assert plan.is_valid()

        space.pkru.write(PkruRegister.DENY_ALL_EXCEPT_DEFAULT)
        assert not plan.is_valid()
        assert plan.cell[0]  # dormant, not shot down
        # Under the denying PKRU the fallback checked path faults — the
        # plan must not leak the rights it was compiled under.
        with pytest.raises(ProtectionKeyViolation):
            plan.load(16, 11)
        with pytest.raises(ProtectionKeyViolation):
            plan.store(16, b"smuggled")

        space.pkru.write(granted)
        assert plan.is_valid()  # same PKRU, same verdict dict: reactivated
        assert plan.load(16, 11) == b"domain-data"

    def test_cache_compiles_one_plan_per_pkru(self):
        space = _mapped_space()
        pkey = space.pkeys.alloc()
        space.page_table.tag_range(0, 2 * PAGE_SIZE, pkey)
        space.pkru.grant(pkey)
        with_key = space.plans.checked_plan(0, PAGE_SIZE, "r")
        space.pkru.write(PkruRegister.DENY_ALL_EXCEPT_DEFAULT)
        # Pages carry the (now denied) key: probe fails, no plan.
        assert space.plans.checked_plan(0, PAGE_SIZE, "r") is None
        # An accessible run compiles a distinct plan under this PKRU.
        other = space.plans.checked_plan(2 * PAGE_SIZE, PAGE_SIZE, "r")
        assert other is not None and other is not with_key


class TestKernelPlans:
    """Kernel plans mirror ``raw_*``: PKRU-exempt, counter-exempt, but
    still bound to the mapping they were compiled over."""

    def test_survives_pkru_switch_but_not_range_update(self):
        space = _mapped_space()
        plan = space.plans.kernel_plan(0, 2 * PAGE_SIZE)
        loads, stores = space.loads, space.stores
        plan.store(32, b"metadata")
        assert plan.load(32, 8) == b"metadata"
        assert (space.loads, space.stores) == (loads, stores)

        space.pkru.write(PkruRegister.DENY_ALL_EXCEPT_DEFAULT)
        assert plan.is_valid()  # kernel access ignores PKRU, like raw_*
        assert plan.load(32, 8) == b"metadata"

        space.page_table.protect_range(
            0, 4 * PAGE_SIZE, readable=True, writable=False
        )
        assert not plan.is_valid()
        # Dead kernel plan falls back to the raw path (still PKRU/perm
        # exempt), so trusted-runtime semantics are unchanged.
        assert plan.load(32, 8) == b"metadata"

    def test_rejects_out_of_space_runs(self):
        space = _mapped_space()
        assert space.plans.kernel_plan(-8, PAGE_SIZE) is None
        assert space.plans.kernel_plan(0, 0) is None
        assert space.plans.kernel_plan(space.size - 16, 64) is None


class TestDomainDestroyShootdown:
    """The load-bearing invariant: a stale plan serving a freed domain's
    heap must be impossible, even when the udi/heap region is recycled."""

    def _capture_heap_plan(self, runtime, domain):
        captured = {}

        def body(handle):
            buf = handle.malloc(64)
            handle.store(buf, b"S" * 64)
            captured["plan"] = handle._plan
            captured["buf"] = buf
            return bytes(handle.load_view(buf, 64))

        result = runtime.execute(domain.udi, body)
        assert result.ok and result.value == b"S" * 64
        assert captured["plan"] is not None
        return captured["plan"], captured["buf"]

    def test_destroy_kills_the_heap_plan(self):
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        plan, buf = self._capture_heap_plan(runtime, domain)
        runtime.domain_destroy(domain.udi)
        assert not plan.cell[0]  # shot down, not merely dormant
        # The freed heap is unmapped: every accessor path faults.
        with pytest.raises(MemoryError_):
            plan.load(buf, 64)
        with pytest.raises(MemoryError_):
            plan.store(buf, b"use-after-destroy")

    def test_stale_plan_cannot_read_a_successor_domain(self):
        runtime = SdradRuntime()
        first = runtime.domain_init(udi=5, flags=DomainFlags.RETURN_TO_PARENT)
        plan, buf = self._capture_heap_plan(runtime, first)
        runtime.domain_destroy(5)
        successor = runtime.domain_init(
            udi=5, flags=DomainFlags.RETURN_TO_PARENT
        )

        def fill(handle):
            secret = handle.malloc(64)
            handle.store(secret, b"successor-secret" * 4)
            return secret

        assert runtime.execute(successor.udi, fill).ok
        # From the root domain, the predecessor's plan must not reveal
        # the successor's heap: the dead plan falls back to the checked
        # path, which denies the successor's key under the root PKRU.
        assert not plan.cell[0]
        with pytest.raises(MemoryError_):
            plan.load(buf, 64)


class TestAblationBitIdentical:
    """``AddressSpace(access_plans=False)`` is the honesty ablation: the
    same workload must produce bit-identical responses, virtual time and
    architectural counters — plans are a pure fast path."""

    def _run_workload(self, access_plans: bool):
        runtime = SdradRuntime(space=AddressSpace(access_plans=access_plans))
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("c")
        responses = []
        for i in range(20):
            value = b"value-%04d" % i
            responses.append(
                server.handle(
                    "c", b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value)
                )
            )
            responses.append(server.handle("c", b"get key%d\r\n" % i))
        # A contained stack smash and the recovery that follows it.
        responses.append(server.handle("c", b"get " + b"K" * 300 + b"\r\n"))
        responses.append(server.handle("c", b"get key7\r\n"))
        responses.extend(
            server.handle_batch(
                "c", [b"get key1 key2\r\n", b"delete key3\r\n", b"get key3\r\n"]
            )
        )
        return runtime, server, responses

    def test_responses_time_and_counters_identical(self):
        rt_on, srv_on, out_on = self._run_workload(True)
        rt_off, srv_off, out_off = self._run_workload(False)
        assert out_on == out_off
        assert rt_on.clock.now == rt_off.clock.now
        assert rt_on.space.loads == rt_off.space.loads
        assert rt_on.space.stores == rt_off.space.stores
        assert rt_on.space.faults == rt_off.space.faults
        assert rt_on.space.pkru.writes == rt_off.space.pkru.writes
        assert srv_on.metrics.rewinds == srv_off.metrics.rewinds == 1
        # And the fast path actually engaged on the plan-on run.
        assert rt_on.space.plans.built > 0
        assert rt_off.space.plans is None

    def test_obs_and_plans_grid_is_pure(self):
        from repro.obs import Observability

        def run(access_plans: bool, obs_on: bool):
            runtime = SdradRuntime(
                space=AddressSpace(access_plans=access_plans),
                obs=Observability() if obs_on else None,
            )
            server = MemcachedServer(
                runtime, isolation=IsolationMode.PER_CONNECTION
            )
            server.connect("c")
            out = [server.handle("c", b"set a 0 0 2\r\nhi\r\n")]
            out.append(server.handle("c", b"get a\r\n"))
            out.append(server.handle("c", b"get " + b"K" * 300 + b"\r\n"))
            return out, runtime.clock.now

        grid = {
            (plans, obs): run(plans, obs)
            for plans in (True, False)
            for obs in (True, False)
        }
        baseline = grid[(False, False)]
        for cell, got in grid.items():
            assert got == baseline, cell


class TestBatchedCoalescing:
    """Adjacent batched requests coalesce into runs checked once — with
    fault identity and partial-application preserved exactly."""

    def _space(self, access_plans: bool = False) -> AddressSpace:
        space = AddressSpace(size=PAGE_SIZE * 16, access_plans=access_plans)
        space.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
        return space

    def test_adjacent_requests_check_once(self):
        space = self._space()
        space.store(0, bytes(range(64)))
        space.load(0, 1)  # warm the read verdict for page 0
        hits = space.tlb_hits
        out = space.load_many([(0, 8), (8, 8), (16, 16), (32, 32)])
        assert out == [
            bytes(range(8)),
            bytes(range(8, 16)),
            bytes(range(16, 32)),
            bytes(range(32, 64)),
        ]
        assert space.tlb_hits == hits + 1  # one fused verdict for the run

    def test_non_adjacent_and_degenerate_requests_keep_semantics(self):
        space = self._space()
        space.store(0, bytes(range(64)))
        out = space.load_many([(0, 4), (32, 4), (8, 0), (8, 4)])
        assert out == [bytes(range(4)), bytes(range(32, 36)), b"", bytes(range(8, 12))]

    def test_load_fault_identity_matches_sequential(self):
        batched = self._space()
        sequential = self._space()
        # Run starts mapped and extends into the unmapped page 4.
        requests = [
            (4 * PAGE_SIZE - 16, 8),
            (4 * PAGE_SIZE - 8, 8),
            (4 * PAGE_SIZE, 8),
        ]
        with pytest.raises(MemoryError_) as batch_exc:
            batched.load_many(requests)
        seq_exc = None
        for address, length in requests:
            try:
                sequential.load(address, length)
            except MemoryError_ as exc:
                seq_exc = exc
                break
        assert str(batch_exc.value) == str(seq_exc)
        assert type(batch_exc.value) is type(seq_exc)
        assert batched.faults == sequential.faults

    def test_store_fault_preserves_partial_prefix(self):
        batched = self._space()
        sequential = self._space()
        items = [
            (4 * PAGE_SIZE - 8, b"a" * 4),
            (4 * PAGE_SIZE - 4, b"b" * 4),
            (4 * PAGE_SIZE, b"c" * 4),
        ]
        with pytest.raises(MemoryError_) as batch_exc:
            batched.store_many(items)
        seq_exc = None
        for address, data in items:
            try:
                sequential.store(address, data)
            except MemoryError_ as exc:
                seq_exc = exc
                break
        # Same fault, same fault count, same partially-applied prefix.
        assert str(batch_exc.value) == str(seq_exc)
        assert batched.faults == sequential.faults
        assert batched.raw_load(4 * PAGE_SIZE - 8, 8) == sequential.raw_load(
            4 * PAGE_SIZE - 8, 8
        )

    def test_plan_batched_ops_match_space_semantics(self):
        space = self._space(access_plans=True)
        space.store(0, bytes(range(64)))
        plan = space.plans.checked_plan(0, PAGE_SIZE, "rw")
        # Mixed in/out-of-window batches: per-item fallback keeps results
        # identical to the space-level batched path.
        requests = [(0, 8), (8, 8), (2 * PAGE_SIZE, 4)]
        assert plan.load_many(requests) == space.load_many(requests)
        plan.store_many([(0, b"zz"), (2 * PAGE_SIZE, b"yy")])
        assert space.load(0, 2) == b"zz"
        assert space.load(2 * PAGE_SIZE, 2) == b"yy"
