"""Ledger tests: live metrics folded through the frozen E5 models.

The ledger must never invent constants — every figure must equal a direct
call into :mod:`repro.sustainability`'s models at the observed rate, so
its numbers are consistent with the offline report tables by construction.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import DEFAULT_DATASET_BYTES, SustainabilityLedger
from repro.obs.metrics import ObsRegistry
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import VirtualClock
from repro.sim.cost import GIB
from repro.sustainability.carbon import CarbonModel
from repro.sustainability.energy import EnergyModel
from repro.sustainability.power import ServerPowerModel, joules_to_kwh


def loaded_ledger(requests=1000, rewinds=3, elapsed=2.0, **kwargs):
    registry = ObsRegistry()
    registry.counter("app_requests_total", app="memcached", status="ok").increment(
        requests - rewinds
    )
    registry.counter(
        "app_requests_total", app="memcached", status="fault"
    ).increment(rewinds)
    registry.counter("sdrad_rewinds_total", cause="stack-canary").increment(rewinds)
    clock = VirtualClock()
    clock.advance(elapsed)
    return SustainabilityLedger(registry, clock, **kwargs)


class TestLiveReadings:
    def test_rate_and_counts(self):
        ledger = loaded_ledger(requests=1000, rewinds=3, elapsed=2.0)
        assert ledger.requests_served() == 1000
        assert ledger.faults_observed() == 3
        assert ledger.request_rate() == pytest.approx(500.0)

    def test_rate_requires_traffic(self):
        empty = SustainabilityLedger(ObsRegistry(), VirtualClock())
        with pytest.raises(ValueError):
            empty.request_rate()

    def test_default_strategies_are_the_papers_pair(self):
        names = [s.name for s in loaded_ledger().default_strategies()]
        assert names == ["sdrad-rewind", "process-restart"]


class TestModelConsistency:
    """Ledger figures == direct calls into the E5 models (no new constants)."""

    def test_energy_per_request_matches_energy_model(self):
        ledger = loaded_ledger()
        energy = EnergyModel(ServerPowerModel())
        for spec, entry in zip(ledger.default_strategies(), ledger.entries()):
            assert entry.joules_per_request == pytest.approx(
                energy.energy_per_request(spec, 500.0, 0.30)
            )

    def test_carbon_per_request_matches_carbon_model(self):
        ledger = loaded_ledger()
        carbon = CarbonModel()
        for spec, entry in zip(ledger.default_strategies(), ledger.entries()):
            operational_g = (
                carbon.operational_kg(joules_to_kwh(entry.joules_per_request))
                * 1000.0
            )
            embodied_g = carbon.embodied_kg(spec.replicas, 1.0 / 500.0) * 1000.0
            assert entry.gco2e_per_request == pytest.approx(
                operational_g + embodied_g
            )

    def test_recovery_cost_matches_power_model(self):
        ledger = loaded_ledger(rewinds=3)
        power = ServerPowerModel()
        for spec, entry in zip(ledger.default_strategies(), ledger.entries()):
            seconds = 3 * spec.downtime_per_fault
            assert entry.recovery_seconds == pytest.approx(seconds)
            effective = min(1.0, 0.30 * (1.0 + spec.runtime_overhead))
            assert entry.recovery_joules == pytest.approx(
                power.energy_joules(effective, seconds)
            )

    def test_rewind_recovery_orders_of_magnitude_cheaper(self):
        rewind, restart = loaded_ledger().entries()
        assert rewind.strategy == "sdrad-rewind"
        assert rewind.recovery_seconds < 1e-3
        assert restart.recovery_seconds > 60.0
        assert restart.recovery_joules > 1e6 * rewind.recovery_joules

    def test_dataset_size_drives_restart_cost(self):
        small = loaded_ledger(dataset_bytes=1 * GIB).entries()[1]
        large = loaded_ledger(dataset_bytes=100 * GIB).entries()[1]
        assert large.recovery_seconds > small.recovery_seconds
        assert DEFAULT_DATASET_BYTES == 10 * GIB

    def test_downtime_comes_from_strategy_model(self):
        ledger = loaded_ledger()
        model = RecoveryStrategyModel(ledger.cost)
        rewind, restart = ledger.entries()
        assert rewind.recovery_seconds == pytest.approx(
            3 * model.sdrad_rewind().downtime_per_fault
        )
        assert restart.recovery_seconds == pytest.approx(
            3 * model.process_restart(DEFAULT_DATASET_BYTES).downtime_per_fault
        )


class TestRendering:
    def test_entries_serialise(self):
        for entry in loaded_ledger().entries():
            data = entry.as_dict()
            json.dumps(data)
            assert data["requests"] == 1000 and data["faults"] == 3

    def test_format_entries_table(self):
        table = loaded_ledger().format_entries()
        assert "sdrad-rewind" in table and "process-restart" in table
        assert "J/req" in table and "mgCO2e/req" in table
