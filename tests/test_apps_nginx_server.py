"""Tests for the NGINX-like server."""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode
from repro.apps.nginx_server import NginxServer
from repro.errors import SdradError
from repro.sdrad.policy import ProcessCrashed
from repro.sdrad.runtime import SdradRuntime

GOOD = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n"
ATTACK = b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\nHost: h\r\n\r\n"


@pytest.fixture
def server(runtime) -> NginxServer:
    srv = NginxServer(runtime)
    srv.connect("alice")
    return srv


class TestServing:
    def test_200_for_root(self, server: NginxServer):
        response = server.handle("alice", GOOD)
        assert response.startswith(b"HTTP/1.1 200 OK")
        assert server.metrics.responses_2xx == 1

    def test_404(self, server: NginxServer):
        response = server.handle("alice", b"GET /nope HTTP/1.1\r\nHost: h\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 404")
        assert server.metrics.responses_4xx == 1

    def test_400_for_malformed(self, server: NginxServer):
        response = server.handle("alice", b"garbage\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")

    def test_unknown_client_rejected(self, server: NginxServer):
        with pytest.raises(SdradError):
            server.handle("ghost", GOOD)

    def test_charges_request_cost(self, runtime, server: NginxServer):
        before = runtime.clock.now
        server.handle("alice", GOOD)
        assert runtime.clock.now - before >= runtime.cost.nginx_request


class TestContainment:
    def test_attack_returns_500_and_rewinds(self, server: NginxServer):
        server.connect("mallory")
        response = server.handle("mallory", ATTACK)
        assert response.startswith(b"HTTP/1.1 500")
        assert server.metrics.rewinds == 1
        assert server.metrics.per_client_faults == {"mallory": 1}

    def test_benign_unaffected_by_attack(self, server: NginxServer):
        server.connect("mallory")
        server.handle("mallory", ATTACK)
        assert server.handle("alice", GOOD).startswith(b"HTTP/1.1 200")

    def test_none_mode_crashes(self):
        runtime = SdradRuntime()
        server = NginxServer(runtime, isolation=IsolationMode.NONE)
        server.connect("mallory")
        with pytest.raises(ProcessCrashed):
            server.handle("mallory", ATTACK)
        assert server.metrics.crashes == 1

    def test_per_request_mode(self):
        runtime = SdradRuntime()
        server = NginxServer(runtime, isolation=IsolationMode.PER_REQUEST)
        server.connect("c")
        assert server.handle("c", ATTACK).startswith(b"HTTP/1.1 500")
        assert server.handle("c", GOOD).startswith(b"HTTP/1.1 200")

    def test_disconnect_frees_domain(self, runtime):
        server = NginxServer(runtime)
        baseline = len(runtime.domains())
        server.connect("x")
        server.disconnect("x")
        assert len(runtime.domains()) == baseline


class TestNginxWatchdog:
    def make_server(self, runtime):
        from repro.sdrad.watchdog import FaultWatchdog, WatchdogConfig

        watchdog = FaultWatchdog(
            runtime.clock,
            WatchdogConfig(threshold=2, window=10.0, quarantine_period=60.0),
        )
        server = NginxServer(runtime, watchdog=watchdog)
        server.connect("mallory")
        server.connect("alice")
        return server

    def test_repeat_attacker_gets_429(self, runtime):
        server = self.make_server(runtime)
        server.handle("mallory", ATTACK)
        server.handle("mallory", ATTACK)  # trips the threshold
        response = server.handle("mallory", GOOD)
        assert response.startswith(b"HTTP/1.1 429")
        assert server.metrics.quarantines == 1
        assert server.metrics.quarantine_refusals == 1

    def test_benign_client_not_quarantined(self, runtime):
        server = self.make_server(runtime)
        server.handle("mallory", ATTACK)
        server.handle("mallory", ATTACK)
        assert server.handle("alice", GOOD).startswith(b"HTTP/1.1 200")

    def test_rewinds_capped(self, runtime):
        server = self.make_server(runtime)
        for _ in range(10):
            server.handle("mallory", ATTACK)
        assert server.metrics.rewinds == 2
