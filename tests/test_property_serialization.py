"""Property-based tests: serializers must round-trip the whole FFI data model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ffi.serialization import (
    BincodeSerializer,
    JsonSerializer,
    MsgpackSerializer,
    PickleSerializer,
)

# The FFI data model: scalars + lists + string-keyed dicts, bounded depth.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
    st.binary(max_size=64),
)

ffi_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=16), children, max_size=6),
    ),
    max_leaves=25,
)

SERIALIZERS = [
    BincodeSerializer(),
    MsgpackSerializer(),
    JsonSerializer(),
    PickleSerializer(),
]


@settings(max_examples=150, deadline=None)
@given(value=ffi_values)
def test_bincode_roundtrip(value):
    s = BincodeSerializer()
    assert s.decode(s.encode(value)) == value


@settings(max_examples=150, deadline=None)
@given(value=ffi_values)
def test_msgpack_roundtrip(value):
    s = MsgpackSerializer()
    assert s.decode(s.encode(value)) == value


@settings(max_examples=150, deadline=None)
@given(value=ffi_values)
def test_json_roundtrip(value):
    s = JsonSerializer()
    assert s.decode(s.encode(value)) == value


@settings(max_examples=150, deadline=None)
@given(value=ffi_values)
def test_pickle_roundtrip(value):
    s = PickleSerializer()
    assert s.decode(s.encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(value=ffi_values)
def test_serializers_agree_on_values(value):
    """All serializers must decode to the *same* value (shared data model)."""
    decoded = [s.decode(s.encode(value)) for s in SERIALIZERS]
    assert all(d == decoded[0] for d in decoded)


@settings(max_examples=200, deadline=None)
@given(garbage=st.binary(max_size=128))
def test_bincode_never_crashes_on_garbage(garbage):
    """Attacker-controlled bytes must raise SerializationError, never crash."""
    from repro.errors import SerializationError

    s = BincodeSerializer()
    try:
        s.decode(garbage)
    except SerializationError:
        pass


@settings(max_examples=200, deadline=None)
@given(garbage=st.binary(max_size=128))
def test_msgpack_never_crashes_on_garbage(garbage):
    from repro.errors import SerializationError

    s = MsgpackSerializer()
    try:
        s.decode(garbage)
    except SerializationError:
        pass


@settings(max_examples=100, deadline=None)
@given(garbage=st.binary(max_size=128))
def test_json_never_crashes_on_garbage(garbage):
    from repro.errors import SerializationError

    s = JsonSerializer()
    try:
        s.decode(garbage)
    except SerializationError:
        pass
