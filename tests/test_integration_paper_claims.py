"""Integration: each quantitative claim of the paper, end-to-end.

One test class per claim; EXPERIMENTS.md references these as the executable
record of the reproduction.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.faultinj.campaign import PeriodicArrivals
from repro.resilience.simulation import compare_strategies
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sdrad.runtime import SdradRuntime
from repro.sim.clock import MINUTES, YEARS
from repro.sim.cost import GIB
from repro.sustainability.lca import LifecycleAssessment

MODEL = RecoveryStrategyModel()


class TestClaimOverheadBand:
    """§II: 'negligible overhead (2 %–4 %) in realistic multi-processing
    scenarios' — measured as isolated vs unisolated virtual time per
    request on the Memcached replica."""

    @staticmethod
    def run_requests(isolation: IsolationMode, n: int = 200) -> float:
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=isolation)
        server.connect("c")
        requests = [b"set k%03d 0 0 8\r\nvalue123\r\n" % (i % 50) for i in range(n)]
        start = runtime.clock.now
        for request in requests:
            server.handle("c", request)
        return runtime.clock.now - start

    def test_per_connection_overhead_in_band(self):
        baseline = self.run_requests(IsolationMode.NONE)
        isolated = self.run_requests(IsolationMode.PER_CONNECTION)
        overhead = isolated / baseline - 1.0
        assert 0.01 < overhead < 0.05, f"overhead {overhead:.4f} out of band"

    def test_per_request_overhead_is_larger(self):
        per_connection = self.run_requests(IsolationMode.PER_CONNECTION)
        per_request = self.run_requests(IsolationMode.PER_REQUEST)
        assert per_request > per_connection


class TestClaimRecoveryTimes:
    """§II: 'a regular restart takes about 2 minutes, in-process rewinding
    takes only 3.5 µs'."""

    def test_restart_about_two_minutes_at_10gib(self):
        spec = MODEL.process_restart(10 * GIB)
        assert spec.downtime_per_fault == pytest.approx(2 * MINUTES, rel=0.2)

    def test_rewind_exactly_3_5_us(self):
        assert MODEL.sdrad_rewind().downtime_per_fault == pytest.approx(3.5e-6)

    def test_measured_rewind_matches_spec(self):
        """The spec number and the *measured* rewind in the runtime agree."""
        runtime = SdradRuntime()
        server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
        server.connect("m")
        rewind_events_before = runtime.tracer.count("domain.rewind")
        before = runtime.clock.now
        server.handle("m", b"get " + b"K" * 270 + b"\r\n")
        elapsed = runtime.clock.now - before
        assert runtime.tracer.count("domain.rewind") == rewind_events_before + 1
        # request time = parse attempt + rewind; the rewind dominates
        assert runtime.cost.rewind < elapsed < 3 * runtime.cost.rewind

    def test_ratio_exceeds_ten_million(self):
        restart = MODEL.process_restart(10 * GIB).downtime_per_fault
        rewind = MODEL.sdrad_rewind().downtime_per_fault
        assert restart / rewind > 1e7


class TestClaimAvailability:
    """§IV: three 2-minute restarts/year violate five nines; rewind leaves
    >9·10⁷ recoveries of headroom."""

    def test_simulated_year_three_faults(self):
        times = list(PeriodicArrivals(3).times(YEARS))
        outcomes = compare_strategies(MODEL.all_for(10 * GIB), times)
        by_name = {o.strategy: o for o in outcomes}
        assert not by_name["process-restart"].meets_five_nines
        assert by_name["sdrad-rewind"].meets_five_nines
        assert by_name["replicated-2x"].meets_five_nines

    def test_rewind_survives_ninety_million_faults_budget(self):
        spec = MODEL.sdrad_rewind()
        assert spec.recoveries_per_budget(315.36) > 9e7

    def test_simulated_year_with_hourly_faults_still_five_nines(self):
        times = list(PeriodicArrivals(24 * 365).times(YEARS))  # hourly
        outcomes = compare_strategies([MODEL.sdrad_rewind()], times)
        assert outcomes[0].meets_five_nines


class TestClaimSustainability:
    """§IV: replication for availability over-provisions hardware; SDRaD
    achieves the target with one instance."""

    def test_equal_availability_unequal_carbon(self):
        lca = LifecycleAssessment()
        rows = lca.assess(dataset_bytes=10 * GIB, faults_per_year=3)
        compliant = [r for r in rows if r.meets_target]
        assert len(compliant) == 3
        best = min(compliant, key=lambda r: r.total_kg)
        assert best.strategy == "sdrad-rewind"
        assert best.replicas == 1

    def test_saving_survives_moderate_rebound(self):
        lca = LifecycleAssessment()
        rows = lca.assess(dataset_bytes=10 * GIB, faults_per_year=3)
        assert lca.carbon_saving(rows, rebound_fraction=0.5) > 0


class TestClaimRetrofitEffort:
    """§II: retrofitting Memcached took 2 changed files / 484 added lines.
    Our replica's integration surface is the same order of magnitude."""

    def test_integration_surface_is_small(self):
        import inspect

        from repro.apps import memcached_server

        source = inspect.getsource(memcached_server)
        # the whole isolated-server module (wrapper + parser + plumbing)
        # stays within a few hundred lines, like the paper's patch
        assert len(source.splitlines()) < 600
