"""Tests for fault classification."""

from __future__ import annotations

import pytest

from repro.errors import (
    AllocationFailure,
    HeapCorruption,
    InvalidFree,
    PermissionFault,
    ProtectionKeyViolation,
    SegmentationFault,
    StackCanaryViolation,
)
from repro.sdrad.detect import DetectionMechanism, classify, is_recoverable


class TestRecoverability:
    @pytest.mark.parametrize(
        "exc",
        [
            SegmentationFault(0x100),
            ProtectionKeyViolation(0x100, 3),
            PermissionFault(0x100, "store", "r--"),
            StackCanaryViolation("f", 1, 2),
            HeapCorruption(0x100, "x"),
            InvalidFree(0x100),
            AllocationFailure("oom"),
        ],
    )
    def test_memory_faults_are_recoverable(self, exc):
        assert is_recoverable(exc)

    @pytest.mark.parametrize(
        "exc",
        [KeyError("x"), ValueError("y"), RuntimeError("z"), ZeroDivisionError()],
    )
    def test_logic_errors_are_not_recoverable(self, exc):
        assert not is_recoverable(exc)


class TestClassification:
    @pytest.mark.parametrize(
        "exc, mechanism",
        [
            (ProtectionKeyViolation(0x10, 2), DetectionMechanism.PKEY_VIOLATION),
            (SegmentationFault(0x10), DetectionMechanism.PAGE_FAULT),
            (PermissionFault(0x10, "store", "r--"), DetectionMechanism.PAGE_PERMISSION),
            (StackCanaryViolation("f", 1, 2), DetectionMechanism.STACK_CANARY),
            (HeapCorruption(0x10, "g"), DetectionMechanism.HEAP_INTEGRITY),
            (InvalidFree(0x10), DetectionMechanism.INVALID_FREE),
            (AllocationFailure("oom"), DetectionMechanism.OUT_OF_MEMORY),
        ],
    )
    def test_mechanism_mapping(self, exc, mechanism):
        assert classify(exc).mechanism is mechanism

    def test_report_carries_address(self):
        report = classify(SegmentationFault(0xBEEF))
        assert report.address == 0xBEEF

    def test_report_carries_domain_and_time(self):
        report = classify(SegmentationFault(1), domain_udi=4, timestamp=1.5)
        assert report.domain_udi == 4
        assert report.timestamp == 1.5

    def test_classify_rejects_logic_errors(self):
        with pytest.raises(TypeError):
            classify(ValueError("not a memory fault"))

    def test_report_str_mentions_mechanism(self):
        report = classify(ProtectionKeyViolation(0x40, 3), domain_udi=2)
        text = str(report)
        assert "pkey-violation" in text
        assert "domain 2" in text
