"""Tests for the multi-worker cluster: blast radius and restart windows."""

from __future__ import annotations

import pytest

from repro.apps.cluster import NginxCluster
from repro.apps.memcached_server import IsolationMode
from repro.errors import SdradError

GOOD = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"
ATTACK = b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\nHost: x\r\n\r\n"


def cluster_with_clients(isolation: IsolationMode, workers: int = 4, clients: int = 12):
    cluster = NginxCluster(workers=workers, isolation=isolation)
    names = [f"client-{i}" for i in range(clients)]
    for name in names:
        cluster.connect(name)
    return cluster, names


class TestRouting:
    def test_affinity_is_stable(self):
        cluster, names = cluster_with_clients(IsolationMode.PER_CONNECTION)
        first = {name: cluster.worker_of(name) for name in names}
        for name in names:
            cluster.handle(name, GOOD)
        assert {name: cluster.worker_of(name) for name in names} == first

    def test_clients_spread_over_workers(self):
        cluster, names = cluster_with_clients(
            IsolationMode.PER_CONNECTION, workers=4, clients=40
        )
        used = {cluster.worker_of(name) for name in names}
        assert len(used) == 4

    def test_unknown_client_rejected(self):
        cluster, _ = cluster_with_clients(IsolationMode.PER_CONNECTION)
        with pytest.raises(SdradError):
            cluster.handle("stranger", GOOD)

    def test_all_requests_served_when_benign(self):
        cluster, names = cluster_with_clients(IsolationMode.PER_CONNECTION)
        for _ in range(3):
            for name in names:
                assert cluster.handle(name, GOOD).startswith(b"HTTP/1.1 200")
        assert cluster.metrics.served == 3 * len(names)

    def test_validation(self):
        with pytest.raises(SdradError):
            NginxCluster(workers=0)


class TestUnisolatedBlastRadius:
    def test_attack_kills_one_worker_only(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE, clients=20)
        attacker = names[0]
        victim_worker = cluster.worker_of(attacker)
        response = cluster.handle(attacker, ATTACK)
        assert response.startswith(b"HTTP/1.1 502")
        assert cluster.metrics.worker_crashes == 1

        same = [n for n in names[1:] if cluster.worker_of(n) == victim_worker]
        other = [n for n in names[1:] if cluster.worker_of(n) != victim_worker]
        assert same and other
        # same-worker clients get 503 during the restart window
        assert cluster.handle(same[0], GOOD).startswith(b"HTTP/1.1 503")
        # other workers keep serving
        assert cluster.handle(other[0], GOOD).startswith(b"HTTP/1.1 200")

    def test_worker_returns_after_restart_window(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        cluster.handle(names[0], ATTACK)
        cluster.clock.advance(cluster.cost.process_restart_time(0) + 0.01)
        assert cluster.handle(names[0], GOOD).startswith(b"HTTP/1.1 200")
        assert cluster.metrics.connections_reset >= 1

    def test_repeated_kills_accumulate_downtime(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        attacker = names[0]
        for _ in range(3):
            cluster.handle(attacker, ATTACK)
            cluster.clock.advance(cluster.cost.process_restart_time(0) + 0.01)
        assert cluster.metrics.worker_restarts == 3
        fraction = cluster.downtime_fraction(cluster.clock.now)
        assert fraction > 0

    def test_crash_attributed_to_worker(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        attacker = names[0]
        victim = cluster.worker_of(attacker)
        cluster.handle(attacker, ATTACK)
        assert cluster.metrics.per_worker_crashes == {victim: 1}


class TestDowntimeAccounting:
    """Interval-based downtime: clipping, exactness, concurrent outages."""

    def test_downtime_matches_recorded_intervals_exactly(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        window = cluster.cost.process_restart_time(0)
        cluster.handle(names[0], ATTACK)
        cluster.clock.advance(window + 1.0)
        cluster.handle(names[0], ATTACK)
        cluster.clock.advance(window + 1.0)
        horizon = cluster.clock.now
        expected = 2 * window / (len(cluster.workers) * horizon)
        assert cluster.downtime_fraction(horizon) == pytest.approx(expected)

    def test_window_open_at_horizon_counts_elapsed_part_only(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        window = cluster.cost.process_restart_time(0)
        cluster.handle(names[0], ATTACK)
        crash_at = cluster.clock.now
        # Ask about a horizon cutting the restart window in half: only the
        # elapsed half may count. The old restarts*window accounting billed
        # the full window no matter where the horizon fell.
        horizon = crash_at + window / 2
        expected = (window / 2) / (len(cluster.workers) * horizon)
        assert cluster.downtime_fraction(horizon) == pytest.approx(expected)

    def test_outage_entirely_past_horizon_is_free(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        cluster.clock.advance(5.0)
        cluster.handle(names[0], ATTACK)
        # The crash happened after this horizon; it contributes nothing.
        assert cluster.downtime_fraction(4.0) == 0.0

    def test_outage_intervals_are_recorded(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        window = cluster.cost.process_restart_time(0)
        cluster.handle(names[0], ATTACK)
        worker = cluster.workers[cluster.worker_of(names[0])]
        start, end = worker.outages[-1]
        assert end - start == pytest.approx(window)

    def test_concurrent_outages_add_capacity_shares(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE, clients=40)
        by_worker: dict[int, str] = {}
        for name in names:
            by_worker.setdefault(cluster.worker_of(name), name)
        assert len(by_worker) == 4
        attackers = list(by_worker.values())[:2]
        # Two different workers crash back-to-back: their restart windows
        # overlap almost fully, and both shares must count for that span.
        cluster.handle(attackers[0], ATTACK)
        cluster.handle(attackers[1], ATTACK)
        window = cluster.cost.process_restart_time(0)
        cluster.clock.advance(window + 1.0)
        horizon = cluster.clock.now
        expected = 2 * window / (len(cluster.workers) * horizon)
        assert cluster.downtime_fraction(horizon) == pytest.approx(
            expected, rel=1e-6
        )
        assert cluster.capacity_dip(horizon) == 0.5

    def test_capacity_dip_single_worker(self):
        cluster, names = cluster_with_clients(IsolationMode.NONE)
        cluster.handle(names[0], ATTACK)
        cluster.clock.advance(10.0)
        assert cluster.capacity_dip(cluster.clock.now) == 0.25

    def test_capacity_dip_no_outages(self):
        cluster, _ = cluster_with_clients(IsolationMode.NONE)
        cluster.clock.advance(1.0)
        assert cluster.capacity_dip(cluster.clock.now) == 0.0

    def test_validation(self):
        cluster, _ = cluster_with_clients(IsolationMode.NONE)
        with pytest.raises(SdradError):
            cluster.downtime_fraction(0.0)
        with pytest.raises(SdradError):
            cluster.capacity_dip(-1.0)


class TestIsolatedCluster:
    def test_attack_rewound_no_crash(self):
        cluster, names = cluster_with_clients(IsolationMode.PER_CONNECTION)
        response = cluster.handle(names[0], ATTACK)
        assert response.startswith(b"HTTP/1.1 500")
        assert cluster.metrics.worker_crashes == 0
        assert cluster.total_rewinds() == 1

    def test_everyone_served_during_attack(self):
        cluster, names = cluster_with_clients(IsolationMode.PER_CONNECTION)
        cluster.handle(names[0], ATTACK)
        for name in names[1:]:
            assert cluster.handle(name, GOOD).startswith(b"HTTP/1.1 200")
        assert cluster.metrics.refused_worker_down == 0
        assert cluster.metrics.connections_reset == 0

    def test_no_downtime_fraction(self):
        cluster, names = cluster_with_clients(IsolationMode.PER_CONNECTION)
        for _ in range(5):
            cluster.handle(names[0], ATTACK)
        cluster.clock.advance(10.0)
        assert cluster.downtime_fraction(cluster.clock.now) == 0.0
