"""End-to-end fleet runs: determinism, failover availability, autoscaling."""

from __future__ import annotations

import pytest

from repro.fleet import AutoscalerConfig, FleetRunConfig, HealthConfig, run_fleet

#: Availability floor the failover experiment must hold: with 4 shards and
#: a sub-second outage, in-band detection (3 consecutive failures) caps the
#: damage at a handful of requests out of thousands.
AVAILABILITY_FLOOR = 0.995

SMALL = dict(keyspace=5_000, rate=2_000.0, horizon=0.5, preload=300)


def small_config(**overrides):
    params = dict(SMALL, shards=4, seed=11)
    params.update(overrides)
    return FleetRunConfig(**params)


class TestBaselineRun:
    def test_healthy_run_serves_everything(self):
        report = run_fleet(small_config())
        assert report.availability == 1.0
        assert report.errors == 0
        assert report.ops > 500
        assert report.failovers == 0

    def test_percentiles_are_ordered_and_resolved(self):
        report = run_fleet(small_config())
        assert 0 < report.p50 <= report.p99 <= report.p999
        # The fine ladder must actually resolve the tail: p999 must not be
        # an entire decade above p99 on a healthy uncontended run.
        assert report.p999 < report.p99 * 10

    def test_ledger_reports_both_strategies(self):
        report = run_fleet(small_config())
        strategies = {entry["strategy"] for entry in report.ledger}
        assert strategies == {"sdrad-rewind", "process-restart"}
        for entry in report.ledger:
            assert entry["joules_per_request"] > 0
            assert entry["gco2e_per_request"] > 0
            assert entry["requests"] >= report.ops

    def test_scatter_batches_bounded_by_shards(self):
        report = run_fleet(small_config())
        # Scatter coalesces: never more sub-batches than multigets x shards,
        # and strictly fewer wire requests than keys (the whole point).
        assert report.scatter_batches <= report.multigets * 4
        assert report.scatter_batches < report.scatter_keys

    def test_run_is_deterministic(self):
        config = small_config(kill_at=0.2, outage=0.1)
        first = run_fleet(config).as_dict()
        second = run_fleet(config).as_dict()
        assert first == second

    def test_seed_changes_run(self):
        base = small_config()
        other = small_config()
        other.seed = 12
        assert run_fleet(base).ops != run_fleet(other).ops


class TestFailoverRun:
    def config(self):
        return small_config(
            rate=4_000.0,
            horizon=1.0,
            kill_at=0.3,
            kill_shard="shard-1",
            outage=0.2,
            health_config=HealthConfig(probe_interval=0.05),
        )

    def test_availability_floor_holds_through_outage(self):
        report = run_fleet(self.config())
        assert report.failovers == 1
        assert report.availability >= AVAILABILITY_FLOOR

    def test_recovered_shard_rejoins_and_restarts_once(self):
        report = run_fleet(self.config())
        assert report.rejoins == 1
        assert report.restarts == 1
        assert report.shards_final == 4

    def test_rebalance_is_minimal_and_deterministic(self):
        report = run_fleet(self.config())
        fleet = report.fleet
        # After rejoin the ring matches an untouched fleet with the same
        # seed: failover moved only the victim's ranges, rejoin restored
        # them, and the whole dance replays identically under the seed.
        from repro.fleet import Fleet

        probe = [b"probe:%06d" % i for i in range(2_000)]
        fresh = Fleet(4, seed=11)
        assert fleet.ring.assignment(probe) == fresh.ring.assignment(probe)
        again = run_fleet(self.config())
        assert again.as_dict() == report.as_dict()


class TestAutoscaleRun:
    def test_overload_scales_up(self):
        report = run_fleet(
            small_config(
                shards=1,
                rate=20_000.0,
                horizon=1.0,
                autoscale=True,
                autoscaler_config=AutoscalerConfig(cooldown=0.3),
            )
        )
        assert report.shards_final > 1
        assert report.autoscale_decisions
        assert all(delta == 1 for _, _, delta in report.autoscale_decisions)

    def test_light_load_does_not_scale(self):
        report = run_fleet(
            small_config(rate=500.0, autoscale=True)
        )
        # Light load with healthy latency: never a scale-up; draining the
        # over-provisioned fleet via the hysteresis path is fine.
        assert report.shards_final <= 4
        assert all(delta == -1 for _, _, delta in report.autoscale_decisions)
        assert report.availability == 1.0


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            FleetRunConfig(shards=0)
        with pytest.raises(ValueError):
            FleetRunConfig(rate=0.0)
        with pytest.raises(ValueError):
            FleetRunConfig(multiget_fraction=0.8, set_fraction=0.4)
        with pytest.raises(ValueError):
            FleetRunConfig(multiget_size=0)
        with pytest.raises(ValueError):
            FleetRunConfig(kill_at=0.1, outage=0.0)

    def test_report_dict_round_trips_json(self):
        import json

        report = run_fleet(small_config(horizon=0.1))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ops"] == report.ops
        assert payload["ledger"][0]["strategy"] == "sdrad-rewind"
        assert report.format()
