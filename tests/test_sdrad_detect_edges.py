"""Edge cases for fault detection: discarded stacks, double faults, batches.

These exercise the seams between the detection mechanisms (detect.py) and
the rewind machinery: a canary check racing a discard, a domain that
faults again on its retry attempt, and detection of one poisoned request
inside a pipelined batch.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.policy import RetryPolicy
from repro.sdrad.runtime import SdradRuntime

ATTACK_LONG_KEY = b"get " + b"K" * 270 + b"\r\n"


def _smash_canary(handle):
    """Overflow a 16-byte stack buffer so the epilogue canary check fires."""
    frame = handle.push_frame("victim")
    buf = frame.alloca(16)
    # Overrun by a few words only: far enough to clobber the canary slot,
    # short enough not to fault on an unmapped page first.
    frame.write_buffer(buf, b"A" * 31)
    handle.pop_frame(frame)


class TestCanaryCheckOnDiscardedDomain:
    def test_smashed_canary_is_detected(self, runtime, domain):
        result = runtime.execute(domain.udi, _smash_canary)
        assert not result.ok
        assert result.fault.mechanism is DetectionMechanism.STACK_CANARY

    def test_canary_sweep_after_discard_is_clean(self, runtime, domain):
        """The rewind unwinds every frame; a later ``check_canaries`` sweep
        must not re-raise for the smashed-but-discarded frame."""
        result = runtime.execute(domain.udi, _smash_canary)
        assert not result.ok
        assert domain.stack.depth == 0
        domain.stack.check_canaries()  # must not raise

    def test_domain_is_reusable_after_canary_discard(self, runtime, domain):
        runtime.execute(domain.udi, _smash_canary)

        def benign(handle):
            frame = handle.push_frame("clean")
            try:
                buf = frame.alloca(16)
                frame.write_buffer(buf, b"ok")
                return bytes(frame.read_buffer(buf, 2))
            finally:
                handle.pop_frame(frame)

        result = runtime.execute(domain.udi, benign)
        assert result.ok
        assert result.value == b"ok"


class TestDoubleFaultDuringRewind:
    """A domain that faults again on its post-rewind retry attempt."""

    def test_retry_fault_stays_contained(self, runtime, domain):
        result = runtime.execute(
            domain.udi, _smash_canary, policy=RetryPolicy(max_retries=1)
        )
        assert not result.ok
        assert result.retries == 1
        assert result.fault.mechanism is DetectionMechanism.STACK_CANARY

    def test_both_faults_and_rewinds_are_counted(self, runtime, domain):
        runtime.execute(domain.udi, _smash_canary, policy=RetryPolicy(max_retries=1))
        assert domain.stats.faults == 2
        assert domain.stats.rewinds == 2
        assert domain.stats.fault_kinds == {"stack-canary": 2}
        rewound = list(runtime.tracer.of_kind("domain.rewind"))
        assert len(rewound) == 2

    def test_context_stack_unwound_and_domain_reusable(self, runtime, domain):
        runtime.execute(domain.udi, _smash_canary, policy=RetryPolicy(max_retries=1))
        # The entry context was popped despite two nested faults ...
        result = runtime.execute(domain.udi, lambda handle: 42)
        assert result.ok and result.value == 42

    def test_zero_retry_budget_means_single_rewind(self, runtime, domain):
        result = runtime.execute(
            domain.udi, _smash_canary, policy=RetryPolicy(max_retries=0)
        )
        assert not result.ok
        assert result.retries == 0
        assert domain.stats.rewinds == 1


class TestDetectionInsideBatch:
    """One poisoned request pipelined among good ones (handle_batch)."""

    @pytest.fixture
    def server(self):
        srv = MemcachedServer(SdradRuntime(), isolation=IsolationMode.PER_CONNECTION)
        srv.connect("mallory")
        return srv

    def test_only_the_offender_errors(self, server):
        responses = server.handle_batch(
            "mallory",
            [
                b"set foo 7 0 5\r\nhello\r\n",
                ATTACK_LONG_KEY,
                b"get foo\r\n",
            ],
        )
        assert responses[0] == b"STORED\r\n"
        assert responses[1].startswith(b"SERVER_ERROR")
        assert responses[2] == b"VALUE foo 7 5\r\nhello\r\nEND\r\n"

    def test_batch_fault_is_attributed_to_stack_canary(self, server):
        server.handle_batch("mallory", [b"get ok\r\n", ATTACK_LONG_KEY])
        udi = server._connections["mallory"]
        stats = server.runtime.domain(udi).stats
        assert stats.fault_kinds.get("stack-canary", 0) >= 1

    def test_poisoned_batch_has_no_partial_effects(self, server):
        """Nothing from the faulted batch entry is applied; the per-request
        replay then applies each good command exactly once."""
        server.handle_batch(
            "mallory",
            [b"set a 0 0 1\r\nx\r\n", ATTACK_LONG_KEY, b"set b 0 0 1\r\ny\r\n"],
        )
        assert server.handle("mallory", b"get a\r\n").startswith(b"VALUE a 0 1")
        assert server.handle("mallory", b"get b\r\n").startswith(b"VALUE b 0 1")
        assert server.metrics.server_errors == 1
        assert server.metrics.rewinds == 1
