"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory.address_space import AddressSpace
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime
from repro.sim.rng import RngFactory


@pytest.fixture
def space() -> AddressSpace:
    """A small standalone address space (1 MiB) for memory-layer tests."""
    return AddressSpace(size=1024 * 1024)


@pytest.fixture
def runtime() -> SdradRuntime:
    """A fresh SDRaD runtime with default sizing."""
    return SdradRuntime()


@pytest.fixture
def domain(runtime: SdradRuntime):
    """A rewind-enabled domain on the shared runtime fixture."""
    return runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)


@pytest.fixture
def rng_factory() -> RngFactory:
    return RngFactory(1234)
