"""Tests for the cost model — the calibration against the paper's numbers."""

from __future__ import annotations

import pytest

from repro.sim.clock import MICROSECONDS, MINUTES
from repro.sim.cost import DEFAULT_COST_MODEL, GIB, CostModel


class TestPaperCalibration:
    """The constants the whole reproduction hangs on."""

    def test_rewind_is_3_5_microseconds(self):
        assert DEFAULT_COST_MODEL.rewind == pytest.approx(3.5e-6)

    def test_restart_at_10gib_is_about_two_minutes(self):
        t = DEFAULT_COST_MODEL.process_restart_time(10 * GIB)
        assert 1.5 * MINUTES < t < 2.5 * MINUTES

    def test_rewind_vs_restart_ratio_is_seven_orders(self):
        restart = DEFAULT_COST_MODEL.process_restart_time(10 * GIB)
        ratio = restart / DEFAULT_COST_MODEL.rewind
        assert ratio > 1e7

    def test_domain_roundtrip_is_sub_microsecond(self):
        assert DEFAULT_COST_MODEL.domain_roundtrip() < 1 * MICROSECONDS

    def test_isolation_overhead_band_on_memcached(self):
        """Per-request isolation must land in the paper's 2-4 % band."""
        overhead = (
            DEFAULT_COST_MODEL.domain_roundtrip() / DEFAULT_COST_MODEL.memcached_op
        )
        assert 0.02 <= overhead <= 0.04


class TestRestartTimes:
    def test_restart_scales_linearly_with_dataset(self):
        m = DEFAULT_COST_MODEL
        t1 = m.process_restart_time(1 * GIB)
        t2 = m.process_restart_time(2 * GIB)
        reload_delta = t2 - t1
        assert reload_delta == pytest.approx(GIB / m.reload_bandwidth_bytes_per_s)

    def test_zero_dataset_restart_is_base_cost(self):
        m = DEFAULT_COST_MODEL
        assert m.process_restart_time(0) == pytest.approx(m.process_restart_base)

    def test_container_slower_than_process(self):
        m = DEFAULT_COST_MODEL
        assert m.container_restart_time(GIB) > m.process_restart_time(GIB)

    def test_negative_dataset_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.process_restart_time(-1)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.container_restart_time(-1)


class TestRewindTime:
    def test_scrubbing_adds_per_page_cost(self):
        m = DEFAULT_COST_MODEL
        assert m.rewind_time(scrub_pages=10) == pytest.approx(
            m.rewind + 10 * m.scrub_page
        )

    def test_no_scrub_is_plain_rewind(self):
        assert DEFAULT_COST_MODEL.rewind_time() == DEFAULT_COST_MODEL.rewind


class TestDataMovement:
    def test_copy_time_linear(self):
        m = DEFAULT_COST_MODEL
        assert m.copy_time(2000) == pytest.approx(2 * m.copy_time(1000))

    def test_copy_time_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.copy_time(-1)

    def test_serializer_ladder(self):
        """bincode must be fastest, json slowest — the E6 expectation."""
        m = DEFAULT_COST_MODEL
        size = 64 * 1024
        times = {
            name: m.serialize_time(name, size)
            for name in ("bincode", "msgpack", "json", "pickle")
        }
        assert times["bincode"] < times["msgpack"] < times["json"]
        assert times["bincode"] < times["pickle"] < times["json"]

    def test_unknown_serializer_rejected(self):
        with pytest.raises(KeyError):
            DEFAULT_COST_MODEL.serialize_time("capnproto", 10)

    def test_serialize_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.serialize_time("json", -5)


class TestScaling:
    def test_scaled_multiplies_isolation_costs(self):
        scaled = DEFAULT_COST_MODEL.scaled(10.0)
        assert scaled.rewind == pytest.approx(10 * DEFAULT_COST_MODEL.rewind)
        assert scaled.domain_enter == pytest.approx(
            10 * DEFAULT_COST_MODEL.domain_enter
        )

    def test_scaled_leaves_service_costs_alone(self):
        scaled = DEFAULT_COST_MODEL.scaled(10.0)
        assert scaled.memcached_op == DEFAULT_COST_MODEL.memcached_op
        assert scaled.process_restart_base == DEFAULT_COST_MODEL.process_restart_base

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.scaled(0)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.scaled(-2)

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.rewind = 1.0  # type: ignore[misc]

    def test_custom_model_propagates(self):
        model = CostModel(rewind=1e-3)
        assert model.rewind_time() == pytest.approx(1e-3)
