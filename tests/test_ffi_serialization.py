"""Tests for the serializer suite (SDRaD-FFI crates)."""

from __future__ import annotations

import pytest

from repro.errors import SerializationError
from repro.ffi.serialization import (
    BincodeSerializer,
    JsonSerializer,
    MsgpackSerializer,
    PickleSerializer,
    available_serializers,
    check_serializable,
    get_serializer,
)

ALL = [BincodeSerializer(), MsgpackSerializer(), JsonSerializer(), PickleSerializer()]

SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    3.14159,
    -0.0,
    "",
    "hello",
    "ünïcødé ⚙",
    b"",
    b"\x00\xff binary",
    [],
    [1, 2, 3],
    ["mixed", 1, None, 2.5, b"bytes"],
    {},
    {"a": 1, "b": [True, {"nested": b"x"}]},
    {"deep": {"deeper": {"deepest": [1, [2, [3]]]}}},
]


@pytest.mark.parametrize("serializer", ALL, ids=lambda s: s.name)
@pytest.mark.parametrize("value", SAMPLES, ids=repr)
def test_roundtrip(serializer, value):
    assert serializer.decode(serializer.encode(value)) == value


@pytest.mark.parametrize("serializer", ALL, ids=lambda s: s.name)
def test_tuple_decodes_as_list(serializer):
    assert serializer.decode(serializer.encode((1, 2))) == [1, 2]


@pytest.mark.parametrize("serializer", ALL, ids=lambda s: s.name)
def test_rejects_arbitrary_objects(serializer):
    class Gadget:
        pass

    with pytest.raises(SerializationError):
        serializer.encode(Gadget())


@pytest.mark.parametrize("serializer", ALL, ids=lambda s: s.name)
def test_rejects_non_string_dict_keys(serializer):
    with pytest.raises(SerializationError):
        serializer.encode({1: "x"})


@pytest.mark.parametrize("serializer", ALL, ids=lambda s: s.name)
def test_garbage_decode_raises_not_crashes(serializer):
    for garbage in (b"", b"\xff" * 16, b"\x08\xff\xff\xff\xff", b"{broken"):
        try:
            serializer.decode(garbage)
        except SerializationError:
            pass  # the required behaviour
        # a clean decode of garbage is acceptable only if it yields a value
        # (pickle/json may parse some garbage as a value); crashing is not.


class TestCheckSerializable:
    def test_depth_limit(self):
        value: list = []
        current = value
        for _ in range(100):
            nested: list = []
            current.append(nested)
            current = nested
        with pytest.raises(SerializationError, match="depth"):
            check_serializable(value)

    def test_accepts_reasonable_nesting(self):
        check_serializable({"a": [{"b": [1, 2, {"c": b"x"}]}]})


class TestBincodeDetails:
    def test_compactness_vs_json(self):
        value = {"key": [1, 2, 3, 4, 5], "flag": True}
        bincode = BincodeSerializer().encode(value)
        json_bytes = JsonSerializer().encode(value)
        assert len(bincode) < len(json_bytes) * 3  # sanity: same magnitude

    def test_big_integers(self):
        serializer = BincodeSerializer()
        for value in (2**100, -(2**100)):
            assert serializer.decode(serializer.encode(value)) == value

    def test_trailing_garbage_rejected(self):
        serializer = BincodeSerializer()
        data = serializer.encode(5) + b"\x00"
        with pytest.raises(SerializationError, match="trailing"):
            serializer.decode(data)

    def test_truncation_rejected(self):
        serializer = BincodeSerializer()
        data = serializer.encode("some longer string value")
        with pytest.raises(SerializationError):
            serializer.decode(data[:-3])

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerializationError, match="tag"):
            BincodeSerializer().decode(b"\x7f")


class TestMsgpackDetails:
    def test_small_ints_are_one_byte(self):
        serializer = MsgpackSerializer()
        assert len(serializer.encode(5)) == 1
        assert len(serializer.encode(-3)) == 1

    def test_negative_fixint_roundtrip(self):
        serializer = MsgpackSerializer()
        for value in range(-32, 0):
            assert serializer.decode(serializer.encode(value)) == value

    def test_oversized_int_rejected(self):
        with pytest.raises(SerializationError):
            MsgpackSerializer().encode(2**70)


class TestJsonDetails:
    def test_bytes_marker_roundtrip(self):
        serializer = JsonSerializer()
        assert serializer.decode(serializer.encode(b"\x00\x01\xfe")) == b"\x00\x01\xfe"

    def test_dict_that_looks_like_marker_is_distinct(self):
        serializer = JsonSerializer()
        tricky = {"__ffi_bytes__": "not really bytes", "other": 1}
        assert serializer.decode(serializer.encode(tricky)) == tricky

    def test_output_is_valid_utf8(self):
        JsonSerializer().encode({"k": "v"}).decode("utf-8")


class _Evil:
    """Module-level so pickle can serialise it (the attack payload)."""


class TestPickleDetails:
    def test_decode_validates_data_model(self):
        import pickle

        # a pickle of a non-FFI type must be rejected on decode
        payload = pickle.dumps(_Evil())
        with pytest.raises(SerializationError):
            PickleSerializer().decode(payload)


class TestRegistry:
    def test_all_names_available(self):
        assert available_serializers() == ["bincode", "json", "msgpack", "pickle"]

    def test_lookup(self):
        assert get_serializer("bincode").name == "bincode"

    def test_unknown_name(self):
        with pytest.raises(SerializationError):
            get_serializer("capnproto")
