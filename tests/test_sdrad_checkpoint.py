"""Tests for the checkpoint/restore execution mode (ablation of discard)."""

from __future__ import annotations

import pytest

from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime


PAYLOAD = b"precious domain state that must survive faults!"


@pytest.fixture
def setup(runtime):
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    state = {}

    def stage(handle):
        addr = handle.malloc(64)
        handle.store(addr, PAYLOAD)
        state["addr"] = addr

    runtime.execute(domain.udi, stage)
    return runtime, domain, state


class TestCheckpointRestore:
    def test_clean_call_passes_through(self, setup):
        runtime, domain, _ = setup
        result = runtime.execute_with_checkpoint(domain.udi, lambda h: 42)
        assert result.ok and result.value == 42

    def test_fault_restores_state(self, setup):
        runtime, domain, state = setup
        result = runtime.execute_with_checkpoint(
            domain.udi, lambda h: h.store(0, b"fault")
        )
        assert not result.ok
        read = runtime.execute(
            domain.udi, lambda h: h.load(state["addr"], len(PAYLOAD))
        )
        assert read.value == PAYLOAD

    def test_discard_by_contrast_loses_state(self, setup):
        """The semantic difference the ablation is about."""
        runtime, domain, state = setup
        runtime.execute(domain.udi, lambda h: h.store(0, b"fault"))  # rewinds
        # the address is no longer a live allocation after discard
        from repro.errors import InvalidFree

        with pytest.raises(InvalidFree):
            domain.heap.payload_capacity(state["addr"])

    def test_heap_usable_after_restore(self, setup):
        runtime, domain, _ = setup
        runtime.execute_with_checkpoint(domain.udi, lambda h: h.store(0, b"x"))

        def alloc_more(handle):
            addr = handle.malloc(32)
            handle.store(addr, b"new allocation")
            return handle.load(addr, 14)

        assert runtime.execute(domain.udi, alloc_more).value == b"new allocation"
        domain.heap.check()

    def test_restore_recovery_slower_than_rewind(self, setup):
        runtime, domain, _ = setup
        checkpointed = runtime.execute_with_checkpoint(
            domain.udi, lambda h: h.store(0, b"x")
        )
        rewound = runtime.execute(domain.udi, lambda h: h.store(0, b"x"))
        assert checkpointed.recovery_time > rewound.recovery_time

    def test_checkpoint_charged_even_on_success(self, setup):
        """The killer cost: every call pays a domain-sized copy up front."""
        runtime, domain, _ = setup
        footprint = domain.heap_size + domain.stack_size

        before = runtime.clock.now
        runtime.execute(domain.udi, lambda h: None)
        plain_cost = runtime.clock.now - before

        before = runtime.clock.now
        runtime.execute_with_checkpoint(domain.udi, lambda h: None)
        checkpoint_cost = runtime.clock.now - before

        assert checkpoint_cost - plain_cost == pytest.approx(
            runtime.cost.copy_time(footprint)
        )

    def test_trace_records_restore(self, setup):
        runtime, domain, _ = setup
        runtime.execute_with_checkpoint(domain.udi, lambda h: h.store(0, b"x"))
        assert runtime.tracer.count("domain.restore") == 1


class TestCheckpointStrategySpec:
    def test_overhead_is_catastrophic_for_small_requests(self):
        from repro.resilience.strategy import RecoveryStrategyModel

        model = RecoveryStrategyModel()
        spec = model.checkpoint_restore(domain_bytes=320 * 1024)
        # a 320 KiB checkpoint per 10 µs request: several hundred percent
        assert spec.runtime_overhead > 1.0
        rewind = model.sdrad_rewind()
        assert spec.runtime_overhead > 30 * rewind.runtime_overhead

    def test_validation(self):
        from repro.resilience.strategy import RecoveryStrategyModel

        model = RecoveryStrategyModel()
        with pytest.raises(ValueError):
            model.checkpoint_restore(0)
        with pytest.raises(ValueError):
            model.checkpoint_restore(1024, request_time=0.0)
