"""Tests for Domain objects and their discard semantics."""

from __future__ import annotations

import pytest

from repro.errors import DomainStateError
from repro.sdrad.constants import DomainFlags, DomainState
from repro.sdrad.runtime import SdradRuntime


class TestLifecycleStates:
    def test_initial_state(self, domain):
        assert domain.state is DomainState.INITIALIZED

    def test_active_exit_cycle(self, domain):
        domain.mark_active()
        assert domain.state is DomainState.ACTIVE
        domain.mark_exited()
        assert domain.state is DomainState.INITIALIZED

    def test_exit_without_enter_rejected(self, domain):
        with pytest.raises(DomainStateError):
            domain.mark_exited()

    def test_destroyed_cannot_activate(self, domain):
        domain.mark_destroyed()
        with pytest.raises(DomainStateError):
            domain.mark_active()

    def test_faulted_can_reactivate(self, domain):
        domain.mark_active()
        domain.mark_faulted()
        domain.mark_active()  # retry path
        assert domain.state is DomainState.ACTIVE


class TestDiscard:
    def test_discard_resets_heap_and_stack(self, domain):
        domain.heap.malloc(128)
        domain.stack.push_frame("f")
        domain.discard()
        assert domain.heap.stats().live_blocks == 0
        assert domain.stack.depth == 0
        assert domain.state is DomainState.INITIALIZED

    def test_discard_counts_rewinds(self, domain):
        domain.discard()
        domain.discard()
        assert domain.stats.rewinds == 2

    def test_discard_without_scrub_returns_zero_pages(self, domain):
        assert domain.discard() == 0

    def test_discard_with_scrub_flag_scrubs(self):
        runtime = SdradRuntime(scrub_mode="eager")
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )
        pages = domain.discard()
        expected = (domain.heap_size + domain.stack_size) // 4096
        assert pages == expected

    def test_lazy_scrub_discard_touches_no_pages(self, runtime):
        # scrub_mode defaults to "lazy": discard cost is flat regardless of
        # domain size — zero pages touched at rewind time.
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )
        assert runtime.scrub_mode == "lazy"
        assert domain.discard() == 0

    def test_lazy_scrub_zeroes_reallocated_block(self, runtime):
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )
        addr = domain.heap.malloc(64)
        runtime.space.raw_store(addr, b"S3CR3T" * 10)
        domain.discard()
        # The stale bytes survive the discard itself (that's the point) ...
        assert b"S3CR3T" in bytes(
            runtime.space.raw_load(domain.heap_base, domain.heap_size)
        )
        # ... but a fresh allocation never observes them.
        again = domain.heap.malloc(64)
        capacity = domain.heap.payload_capacity(again)
        assert runtime.space.raw_load(again, capacity) == b"\x00" * capacity

    def test_lazy_scrub_zeroes_stack_on_reuse(self, runtime):
        domain = runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD
        )
        frame = domain.stack.push_frame("taint")
        buf = frame.alloca(64)
        runtime.space.raw_store(buf, b"S3CR3T" * 10)
        domain.discard()
        assert domain.stack.scrub_pending
        domain.stack.push_frame("fresh")
        stack_bytes = runtime.space.raw_load(domain.stack_base, domain.stack_size)
        assert b"S3CR3T" not in stack_bytes


class TestProperties:
    def test_isolated_heap_by_default(self, domain):
        assert domain.is_isolated_heap

    def test_nonisolated_flag(self, runtime):
        domain = runtime.domain_init(flags=DomainFlags.NONISOLATED_HEAP)
        assert not domain.is_isolated_heap

    def test_rewind_flag(self, runtime, domain):
        assert domain.rewinds_on_fault  # conftest uses RETURN_TO_PARENT
        plain = runtime.domain_init(flags=DomainFlags.DEFAULT)
        assert not plain.rewinds_on_fault

    def test_footprint(self, domain):
        assert domain.footprint_bytes() == domain.heap_size + domain.stack_size

    def test_fault_kind_accounting(self, domain):
        domain.stats.record_fault("stack-canary")
        domain.stats.record_fault("stack-canary")
        domain.stats.record_fault("pkey-violation")
        assert domain.stats.faults == 3
        assert domain.stats.fault_kinds["stack-canary"] == 2
