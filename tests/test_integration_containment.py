"""Integration: mixed client populations against the full server stack.

This is E4 in test form — the paper's claim that SDRaD "offers significant
advantages with limiting the impact of malicious clients on other clients in
a service-oriented application, without disrupting service".
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.apps.nginx_server import NginxServer
from repro.sdrad.policy import ProcessCrashed
from repro.sdrad.runtime import SdradRuntime
from repro.sim.rng import RngFactory
from repro.workloads.clients import build_population
from repro.workloads.traces import generate_trace
from repro.workloads.zipf import Keyspace, KeyValueWorkload

N_REQUESTS = 400


def memcached_population(factory: RngFactory):
    keyspace = Keyspace(100)

    def workload(cid, rng):
        return KeyValueWorkload(keyspace, 0.99, rng)

    return build_population(
        4, 1, workload, factory, kind="memcached", attack_fraction=0.3
    )


def run_memcached(isolation: IsolationMode, seed: int = 42):
    factory = RngFactory(seed)
    clients = memcached_population(factory)
    trace = generate_trace(clients, N_REQUESTS, factory)
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=isolation)
    for client in trace.clients:
        server.connect(client)
    served = failed = 0
    crashed_at = None
    for entry in trace:
        try:
            response = server.handle(entry.client_id, entry.payload)
        except ProcessCrashed:
            crashed_at = entry.seq
            break
        if response.startswith(b"SERVER_ERROR"):
            failed += 1
        else:
            served += 1
    return server, trace, served, failed, crashed_at


class TestMemcachedContainment:
    def test_isolated_server_survives_entire_trace(self):
        server, trace, served, failed, crashed_at = run_memcached(
            IsolationMode.PER_CONNECTION
        )
        assert crashed_at is None
        assert served + failed == len(trace)
        assert failed == server.metrics.rewinds > 0

    def test_only_attackers_see_errors(self):
        server, trace, *_ = run_memcached(IsolationMode.PER_CONNECTION)
        assert set(server.metrics.per_client_faults) == {"mallory-0"}

    def test_benign_requests_all_succeed(self):
        server, trace, served, failed, _ = run_memcached(IsolationMode.PER_CONNECTION)
        benign_total = sum(1 for e in trace if not e.malicious)
        # every benign request completed (failures are all attacker-owned)
        assert served >= benign_total

    def test_baseline_crashes_partway(self):
        server, trace, served, failed, crashed_at = run_memcached(IsolationMode.NONE)
        assert crashed_at is not None
        assert crashed_at < len(trace)

    def test_isolated_serves_strictly_more_than_baseline(self):
        _, _, served_isolated, _, _ = run_memcached(IsolationMode.PER_CONNECTION)
        _, _, served_baseline, _, crashed = run_memcached(IsolationMode.NONE)
        assert crashed is not None
        assert served_isolated > served_baseline

    def test_store_contents_match_benign_expectations(self):
        """The database after the isolated run contains exactly the benign
        sets that should have landed (attacker writes never corrupted it)."""
        server, trace, *_ = run_memcached(IsolationMode.PER_CONNECTION)
        for entry in trace:
            if entry.malicious or not entry.payload.startswith(b"set "):
                continue
            key = entry.payload.split(b" ", 2)[1]
            assert server.store.contains(key), key


class TestNginxContainment:
    def test_mixed_population_http(self):
        factory = RngFactory(7)
        clients = build_population(3, 1, None, factory, kind="http", attack_fraction=0.4)
        trace = generate_trace(clients, 300, factory)
        runtime = SdradRuntime()
        server = NginxServer(runtime)
        for client in trace.clients:
            server.connect(client)
        for entry in trace:
            response = server.handle(entry.client_id, entry.payload)
            assert response.startswith(b"HTTP/1.1")
        assert server.metrics.crashes == 0
        assert server.metrics.rewinds > 0
        assert set(server.metrics.per_client_faults) == {"mallory-0"}
        # benign traffic got only 2xx
        assert server.metrics.responses_2xx >= sum(
            1 for e in trace if not e.malicious
        )


class TestRecoveryLatencyUnderAttack:
    def test_virtual_time_shows_rewind_cheapness(self):
        """Total recovery time across dozens of attacks stays microscopic —
        the 9·10⁷-recoveries headroom made concrete."""
        server, trace, _, failed, _ = run_memcached(IsolationMode.PER_CONNECTION)
        total_recovery = failed * server.runtime.cost.rewind
        assert failed > 10
        assert total_recovery < 1e-3  # tens of attacks, < 1 ms of recovery
