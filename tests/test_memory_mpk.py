"""Tests for the simulated MPK hardware: PKRU semantics and key allocation."""

from __future__ import annotations

import pytest

from repro.errors import OutOfDomains, SdradError
from repro.memory.mpk import (
    NUM_PKEYS,
    PKEY_DEFAULT,
    PkeyAllocator,
    PkruRegister,
    pkru_bits,
)


class TestPkruBits:
    def test_access_disable_bit_position(self):
        assert pkru_bits(0, access_disable=True, write_disable=False) == 0b01
        assert pkru_bits(1, access_disable=True, write_disable=False) == 0b0100

    def test_write_disable_bit_position(self):
        assert pkru_bits(0, access_disable=False, write_disable=True) == 0b10
        assert pkru_bits(2, access_disable=False, write_disable=True) == 0b10_0000

    def test_out_of_range_key_rejected(self):
        with pytest.raises(SdradError):
            pkru_bits(16, access_disable=True, write_disable=False)
        with pytest.raises(SdradError):
            pkru_bits(-1, access_disable=True, write_disable=False)


class TestPkruRegister:
    def test_reset_state_allows_only_default_key(self):
        pkru = PkruRegister()
        assert pkru.allows_read(PKEY_DEFAULT)
        assert pkru.allows_write(PKEY_DEFAULT)
        for pkey in range(1, NUM_PKEYS):
            assert not pkru.allows_read(pkey)
            assert not pkru.allows_write(pkey)

    def test_grant_full_access(self):
        pkru = PkruRegister()
        pkru.grant(5)
        assert pkru.allows_read(5)
        assert pkru.allows_write(5)

    def test_grant_read_only(self):
        pkru = PkruRegister()
        pkru.grant(5, read=True, write=False)
        assert pkru.allows_read(5)
        assert not pkru.allows_write(5)

    def test_grant_no_read_denies_everything(self):
        pkru = PkruRegister()
        pkru.grant(5, read=False, write=True)
        assert not pkru.allows_read(5)
        assert not pkru.allows_write(5)  # AD implies no write

    def test_revoke(self):
        pkru = PkruRegister()
        pkru.grant(3)
        pkru.revoke(3)
        assert not pkru.allows_read(3)
        assert not pkru.allows_write(3)

    def test_write_counts_wrpkru_instructions(self):
        pkru = PkruRegister()
        assert pkru.writes == 0
        pkru.grant(1)
        pkru.revoke(1)
        pkru.write(0)
        assert pkru.writes == 3

    def test_snapshot_restores_exactly(self):
        pkru = PkruRegister()
        pkru.grant(7, read=True, write=False)
        saved = pkru.snapshot()
        pkru.write(0)  # allow-all
        pkru.write(saved)
        assert pkru.allows_read(7)
        assert not pkru.allows_write(7)

    def test_value_masked_to_32_bits(self):
        pkru = PkruRegister()
        pkru.write(0x1_FFFF_FFFF)
        assert pkru.value == 0xFFFF_FFFF

    def test_zero_value_allows_everything(self):
        pkru = PkruRegister(value=0)
        for pkey in range(NUM_PKEYS):
            assert pkru.allows_read(pkey)
            assert pkru.allows_write(pkey)


class TestPkeyAllocator:
    def test_default_key_preallocated(self):
        allocator = PkeyAllocator()
        assert allocator.is_allocated(PKEY_DEFAULT)
        assert allocator.available == NUM_PKEYS - 1

    def test_alloc_returns_lowest_free(self):
        allocator = PkeyAllocator()
        assert allocator.alloc() == 1
        assert allocator.alloc() == 2

    def test_exhaustion_raises_out_of_domains(self):
        allocator = PkeyAllocator()
        for _ in range(NUM_PKEYS - 1):
            allocator.alloc()
        with pytest.raises(OutOfDomains):
            allocator.alloc()

    def test_free_enables_reuse(self):
        allocator = PkeyAllocator()
        key = allocator.alloc()
        allocator.free(key)
        assert allocator.alloc() == key

    def test_cannot_free_default_key(self):
        with pytest.raises(SdradError):
            PkeyAllocator().free(PKEY_DEFAULT)

    def test_cannot_free_unallocated(self):
        with pytest.raises(SdradError):
            PkeyAllocator().free(5)

    def test_fifteen_domains_max(self):
        """The MPK scalability limit the paper inherits: 15 isolated domains."""
        allocator = PkeyAllocator()
        allocated = [allocator.alloc() for _ in range(15)]
        assert len(set(allocated)) == 15
        with pytest.raises(OutOfDomains):
            allocator.alloc()
