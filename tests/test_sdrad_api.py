"""Tests for the C-shaped SdradApi facade."""

from __future__ import annotations

import pytest

from repro.sdrad.api import SdradApi
from repro.sdrad.constants import DomainFlags, ReturnCode


@pytest.fixture
def api() -> SdradApi:
    return SdradApi()


class TestDomainLifecycle:
    def test_init_success(self, api: SdradApi):
        assert api.sdrad_init(1) is ReturnCode.SUCCESS

    def test_duplicate_init_illegal_state(self, api: SdradApi):
        api.sdrad_init(1)
        assert api.sdrad_init(1) is ReturnCode.ILLEGAL_STATE
        assert api.last_error is not None

    def test_out_of_pkeys(self, api: SdradApi):
        for udi in range(1, 16):
            assert api.sdrad_init(udi) is ReturnCode.SUCCESS
        assert api.sdrad_init(16) is ReturnCode.OUT_OF_PKEYS

    def test_deinit_success(self, api: SdradApi):
        api.sdrad_init(1)
        assert api.sdrad_deinit(1) is ReturnCode.SUCCESS

    def test_deinit_unknown(self, api: SdradApi):
        assert api.sdrad_deinit(5) is ReturnCode.NO_SUCH_DOMAIN

    def test_custom_sizes(self, api: SdradApi):
        code = api.sdrad_init(2, heap_size=64 * 1024, stack_size=16 * 1024)
        assert code is ReturnCode.SUCCESS
        domain = api.runtime.domain(2)
        assert domain.heap_size == 64 * 1024


class TestEnter:
    def test_clean_call(self, api: SdradApi):
        api.sdrad_init(1)
        code, result = api.sdrad_enter(1, lambda h: "value")
        assert code is ReturnCode.SUCCESS
        assert result.value == "value"

    def test_fault_returns_domain_faulted(self, api: SdradApi):
        api.sdrad_init(1)
        code, result = api.sdrad_enter(1, lambda h: h.store(0, b"x"))
        assert code is ReturnCode.DOMAIN_FAULTED
        assert result is not None and not result.ok

    def test_unknown_domain(self, api: SdradApi):
        code, result = api.sdrad_enter(9, lambda h: None)
        assert code is ReturnCode.NO_SUCH_DOMAIN
        assert result is None

    def test_reentry_is_illegal_state(self, api: SdradApi):
        api.sdrad_init(1)

        def reenter(handle):
            return api.sdrad_enter(1, lambda h: None)

        code, result = api.sdrad_enter(1, reenter)
        assert code is ReturnCode.SUCCESS  # outer call fine
        inner_code, inner_result = result.value
        assert inner_code is ReturnCode.ILLEGAL_STATE
        assert inner_result is None


class TestHeapApi:
    def test_malloc_free(self, api: SdradApi):
        api.sdrad_init(1)
        code, addr = api.sdrad_malloc(1, 64)
        assert code is ReturnCode.SUCCESS and addr > 0
        assert api.sdrad_free(1, addr) is ReturnCode.SUCCESS

    def test_malloc_unknown_domain(self, api: SdradApi):
        code, addr = api.sdrad_malloc(9, 64)
        assert code is ReturnCode.NO_SUCH_DOMAIN and addr == 0

    def test_malloc_oom(self, api: SdradApi):
        api.sdrad_init(1, heap_size=8 * 1024)
        code, addr = api.sdrad_malloc(1, 10 * 1024 * 1024)
        assert code is ReturnCode.OUT_OF_MEMORY

    def test_double_free_invalid_argument(self, api: SdradApi):
        api.sdrad_init(1)
        _, addr = api.sdrad_malloc(1, 64)
        api.sdrad_free(1, addr)
        assert api.sdrad_free(1, addr) is ReturnCode.INVALID_ARGUMENT

    def test_dprotect_stages_data(self, api: SdradApi):
        api.sdrad_init(1)
        code, addr = api.sdrad_dprotect(1, b"sensitive")
        assert code is ReturnCode.SUCCESS
        assert api.runtime.copy_out(1, addr, 9) == b"sensitive"

    def test_flags_forwarded(self, api: SdradApi):
        api.sdrad_init(3, flags=DomainFlags.RETURN_TO_PARENT | DomainFlags.SCRUB_ON_DISCARD)
        domain = api.runtime.domain(3)
        assert domain.flags & DomainFlags.SCRUB_ON_DISCARD
