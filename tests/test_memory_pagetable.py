"""Tests for the page table (mmap/mprotect/pkey_mprotect analogues)."""

from __future__ import annotations

import pytest

from repro.errors import SdradError, SegmentationFault
from repro.memory.layout import PAGE_SIZE
from repro.memory.pagetable import PageTable


@pytest.fixture
def table() -> PageTable:
    return PageTable(16 * PAGE_SIZE)


class TestConstruction:
    def test_rejects_unaligned_size(self):
        with pytest.raises(SdradError):
            PageTable(PAGE_SIZE + 1)

    def test_rejects_zero_size(self):
        with pytest.raises(SdradError):
            PageTable(0)

    def test_all_pages_start_unmapped(self, table: PageTable):
        for page in range(table.num_pages):
            assert not table.entry_for(page * PAGE_SIZE).present


class TestMapping:
    def test_map_sets_present_and_perms(self, table: PageTable):
        table.map_range(0, 2 * PAGE_SIZE, readable=True, writable=False, pkey=3)
        entry = table.entry_for(PAGE_SIZE)
        assert entry.present and entry.readable and not entry.writable
        assert entry.pkey == 3

    def test_double_map_rejected(self, table: PageTable):
        table.map_range(0, PAGE_SIZE)
        with pytest.raises(SdradError):
            table.map_range(0, PAGE_SIZE)

    def test_unmap_clears_entry(self, table: PageTable):
        table.map_range(0, PAGE_SIZE, pkey=5)
        table.unmap_range(0, PAGE_SIZE)
        entry = table.entry_for(0)
        assert not entry.present
        assert entry.pkey == 0

    def test_double_unmap_rejected(self, table: PageTable):
        table.map_range(0, PAGE_SIZE)
        table.unmap_range(0, PAGE_SIZE)
        with pytest.raises(SdradError):
            table.unmap_range(0, PAGE_SIZE)

    def test_unaligned_range_rejected(self, table: PageTable):
        with pytest.raises(SdradError):
            table.map_range(100, PAGE_SIZE)
        with pytest.raises(SdradError):
            table.map_range(0, 100)

    def test_out_of_space_range_faults(self, table: PageTable):
        with pytest.raises(SegmentationFault):
            table.map_range(15 * PAGE_SIZE, 2 * PAGE_SIZE)

    def test_mapped_bytes(self, table: PageTable):
        table.map_range(0, 3 * PAGE_SIZE)
        assert table.mapped_bytes() == 3 * PAGE_SIZE


class TestProtection:
    def test_protect_changes_perms(self, table: PageTable):
        table.map_range(0, PAGE_SIZE)
        table.protect_range(0, PAGE_SIZE, readable=True, writable=False)
        assert table.entry_for(0).perms() == "r--"

    def test_protect_unmapped_faults(self, table: PageTable):
        with pytest.raises(SegmentationFault):
            table.protect_range(0, PAGE_SIZE, readable=True, writable=True)


class TestTagging:
    def test_tag_range_sets_pkey(self, table: PageTable):
        table.map_range(0, 2 * PAGE_SIZE)
        table.tag_range(0, 2 * PAGE_SIZE, 7)
        assert table.pages_tagged(7) == [0, 1]

    def test_tag_unmapped_faults(self, table: PageTable):
        with pytest.raises(SegmentationFault):
            table.tag_range(0, PAGE_SIZE, 7)

    def test_tag_invalid_key_rejected(self, table: PageTable):
        table.map_range(0, PAGE_SIZE)
        with pytest.raises(SdradError):
            table.tag_range(0, PAGE_SIZE, 16)

    def test_pages_tagged_excludes_unmapped(self, table: PageTable):
        table.map_range(0, PAGE_SIZE)
        table.tag_range(0, PAGE_SIZE, 4)
        table.unmap_range(0, PAGE_SIZE)
        assert table.pages_tagged(4) == []


class TestLookup:
    def test_entry_for_out_of_range_faults(self, table: PageTable):
        with pytest.raises(SegmentationFault):
            table.entry_for(16 * PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            table.entry_for(-1)

    def test_perms_string_unmapped(self, table: PageTable):
        assert table.entry_for(0).perms() == "---"
