"""Tests for fault models and the injector: every bug class is detected by
the mechanism the DESIGN.md table promises."""

from __future__ import annotations

import pytest

from repro.faultinj.injector import FaultInjector
from repro.faultinj.models import FAULT_LIBRARY, NEEDS_ADDRESS, FaultKind, over_read
from repro.sdrad.detect import DetectionMechanism
from repro.sdrad.policy import AbortPolicy, ProcessCrashed


@pytest.fixture
def injector(runtime) -> FaultInjector:
    return FaultInjector(runtime)


EXPECTED_MECHANISM = {
    FaultKind.STACK_SMASH: DetectionMechanism.STACK_CANARY,
    FaultKind.HEAP_OVERFLOW: DetectionMechanism.HEAP_INTEGRITY,
    FaultKind.CROSS_DOMAIN_WRITE: DetectionMechanism.PKEY_VIOLATION,
    FaultKind.CROSS_DOMAIN_READ: DetectionMechanism.PKEY_VIOLATION,
    FaultKind.WILD_WRITE: DetectionMechanism.PKEY_VIOLATION,
    FaultKind.NULL_DEREF: DetectionMechanism.PAGE_FAULT,
    FaultKind.USE_AFTER_FREE: DetectionMechanism.HEAP_INTEGRITY,
    FaultKind.DOUBLE_FREE: DetectionMechanism.INVALID_FREE,
}


class TestDetectionMatrix:
    @pytest.mark.parametrize("kind", list(EXPECTED_MECHANISM), ids=lambda k: k.value)
    def test_kind_detected_by_expected_mechanism(self, injector, domain, kind):
        result = injector.inject(domain.udi, kind)
        assert result.detected
        assert result.mechanism is EXPECTED_MECHANISM[kind]
        assert result.survived and result.contained

    def test_over_read_within_domain_is_silent_leak(self, injector, domain):
        result = injector.inject(domain.udi, FaultKind.OVER_READ)
        assert not result.detected
        assert result.survived

    def test_over_read_leaks_only_domain_bytes(self, runtime, domain):
        # stage a secret inside the domain, then over-read from a later alloc
        secret_addr = runtime.copy_into(domain.udi, b"DOMAIN-LOCAL-SECRET")

        def attack(handle):
            return over_read(handle, alloc=64, read=8192)

        leaked = runtime.execute(domain.udi, attack).value
        assert b"DOMAIN-LOCAL-SECRET" not in leaked or secret_addr  # leak is local
        # the leak cannot contain root-domain bytes: the read never left
        # the domain's pages (otherwise it would have faulted)

    def test_coverage_of_library(self):
        assert set(FAULT_LIBRARY) == set(FaultKind)
        assert NEEDS_ADDRESS <= set(FaultKind)


class TestInjectionAccounting:
    def test_summary_aggregates(self, injector, domain):
        for kind in (FaultKind.STACK_SMASH, FaultKind.HEAP_OVERFLOW, FaultKind.OVER_READ):
            injector.inject(domain.udi, kind)
        summary = injector.summary
        assert summary.total == 3
        assert summary.detected == 2
        assert summary.survived == 3
        assert summary.contained == 2
        assert summary.containment_rate == pytest.approx(2 / 3)

    def test_by_kind_and_mechanism(self, injector, domain):
        injector.inject(domain.udi, FaultKind.DOUBLE_FREE)
        injector.inject(domain.udi, FaultKind.DOUBLE_FREE)
        assert injector.summary.by_kind["double-free"] == 2
        assert injector.summary.by_mechanism["invalid-free"] == 2

    def test_recovery_time_accumulates(self, injector, runtime, domain):
        injector.inject(domain.udi, FaultKind.STACK_SMASH)
        assert injector.summary.total_recovery_time == pytest.approx(
            runtime.cost.rewind
        )

    def test_abort_policy_records_crash(self, injector, domain):
        with pytest.raises(ProcessCrashed):
            injector.inject(domain.udi, FaultKind.STACK_SMASH, policy=AbortPolicy())
        assert injector.summary.total == 1
        assert injector.summary.survived == 0

    def test_custom_victim_address(self, injector, runtime, domain):
        victim = runtime.domain_init()
        result = injector.inject(
            domain.udi, FaultKind.CROSS_DOMAIN_WRITE, victim_addr=victim.heap_base
        )
        assert result.mechanism is DetectionMechanism.PKEY_VIOLATION

    def test_repeated_injection_domain_stays_usable(self, injector, runtime, domain):
        for _ in range(20):
            injector.inject(domain.udi, FaultKind.HEAP_OVERFLOW)
        assert injector.summary.containment_rate == 1.0
        assert runtime.execute(domain.udi, lambda h: "alive").value == "alive"
