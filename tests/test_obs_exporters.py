"""Exporter tests: golden files and mechanical round-trips.

The exporters promise byte-stable output for a deterministic run (virtual
timestamps, sequential ids, sorted families). The golden files under
``tests/fixtures/obs/`` pin that promise: :func:`golden_scenario` builds
the same hub state on every run, and the rendered exports must match the
committed fixtures byte for byte. Regenerate them (after an intentional
format change) with::

    PYTHONPATH=src:tests python -c \
        "import test_obs_exporters as t; t.regenerate_golden_files()"
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.obs import (
    Observability,
    parse_jsonl,
    parse_prometheus_samples,
    prometheus_text,
    spans_to_jsonl,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import ObsRegistry
from repro.obs.spans import SpanBuffer
from repro.sim.clock import VirtualClock
from repro.sim.metrics import Histogram as ExactHistogram

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "obs"
TRACE_GOLDEN = GOLDEN_DIR / "trace.jsonl"
METRICS_GOLDEN = GOLDEN_DIR / "metrics.prom"


def golden_scenario() -> Observability:
    """A small, fully deterministic run: one faulting request + metrics."""
    clock = VirtualClock()
    obs = Observability(clock=clock)
    registry = obs.registry

    request = obs.start_span("memcached.request", client="c0")
    clock.advance(1e-5)
    execute = obs.start_span("domain.execute", udi=1)
    clock.advance(2e-5)
    obs.event("domain.fault", mechanism="stack-canary", udi=1)
    obs.event("domain.rewind", cause="stack-canary", duration=3.5e-6, udi=1)
    clock.advance(3.5e-6)
    obs.end_span(execute, status="fault", retries=0)
    obs.end_span(request, status="fault")

    registry.counter("app_requests_total", app="memcached", status="ok").increment(3)
    registry.counter("app_requests_total", app="memcached", status="fault").increment()
    registry.counter("sdrad_rewinds_total", cause="stack-canary").increment()
    registry.gauge("engine_live_processes").set(2)
    rewind_latency = registry.histogram("sdrad_rewind_latency_seconds")
    for value in (3.5e-6, 4.0e-6, 1.2e-5):
        rewind_latency.observe(value)
    # The fleet's fine-grained ladder (20 buckets/decade) must export and
    # parse like any other histogram despite its ~180 bounds.
    fleet_latency = registry.histogram("fleet_request_latency_seconds")
    for value in (1.1e-5, 1.3e-5, 6.0e-5, 2.4e-4):
        fleet_latency.observe(value)
    exact = ExactHistogram("request_latency_exact")
    for value in (1e-5, 2e-5, 3e-5, 4e-5):
        exact.observe(value)
    registry.adopt_histogram(exact)
    registry.adopt_histogram(ExactHistogram("never_observed"))
    return obs


def regenerate_golden_files() -> None:  # pragma: no cover - maintenance tool
    obs = golden_scenario()
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    TRACE_GOLDEN.write_text(spans_to_jsonl(obs.buffer), encoding="utf-8")
    METRICS_GOLDEN.write_text(prometheus_text(obs.registry), encoding="utf-8")


class TestGoldenFiles:
    def test_trace_jsonl_matches_golden(self):
        obs = golden_scenario()
        assert spans_to_jsonl(obs.buffer) == TRACE_GOLDEN.read_text(encoding="utf-8")

    def test_prometheus_matches_golden(self):
        obs = golden_scenario()
        assert prometheus_text(obs.registry) == METRICS_GOLDEN.read_text(
            encoding="utf-8"
        )

    def test_scenario_is_deterministic(self):
        a, b = golden_scenario(), golden_scenario()
        assert spans_to_jsonl(a.buffer) == spans_to_jsonl(b.buffer)
        assert prometheus_text(a.registry) == prometheus_text(b.registry)


class TestJsonlRoundTrip:
    def test_parse_inverts_render(self):
        obs = golden_scenario()
        spans = parse_jsonl(spans_to_jsonl(obs.buffer))
        assert [s.as_dict() for s in spans] == [
            s.as_dict() for s in obs.buffer
        ]

    def test_golden_file_parses_to_wellformed_tree(self):
        spans = parse_jsonl(TRACE_GOLDEN.read_text(encoding="utf-8"))
        buf = SpanBuffer()
        for span in spans:
            buf.append(span)
        assert buf.tree_violations() == []
        rewinds = buf.of_name("domain.rewind")
        assert len(rewinds) == 1
        assert rewinds[0].attrs["cause"] == "stack-canary"
        assert rewinds[0].attrs["duration"] == 3.5e-6

    def test_write_jsonl_counts_lines(self, tmp_path):
        obs = golden_scenario()
        out = tmp_path / "trace.jsonl"
        count = write_jsonl(obs.buffer, str(out))
        assert count == len(obs.buffer) == 4
        assert out.read_text(encoding="utf-8") == spans_to_jsonl(obs.buffer)

    def test_empty_buffer_renders_empty(self):
        assert spans_to_jsonl(SpanBuffer()) == ""
        assert parse_jsonl("") == []


class TestPrometheusRoundTrip:
    def test_samples_parse_back(self):
        obs = golden_scenario()
        samples = parse_prometheus_samples(prometheus_text(obs.registry))
        assert samples['app_requests_total{app="memcached",status="ok"}'] == 3
        assert samples['app_requests_total{app="memcached",status="fault"}'] == 1
        assert samples["engine_live_processes"] == 2
        # Cumulative buckets: 2 rewinds <= 5e-6, all 3 <= 1e-4 and +Inf.
        assert samples['sdrad_rewind_latency_seconds_bucket{le="5e-06"}'] == 2
        assert samples['sdrad_rewind_latency_seconds_bucket{le="0.0001"}'] == 3
        assert samples['sdrad_rewind_latency_seconds_bucket{le="+Inf"}'] == 3
        assert samples["sdrad_rewind_latency_seconds_count"] == 3
        assert samples["request_latency_exact_count"] == 4
        assert samples["never_observed_count"] == 0

    def test_histogram_sum_consistency(self):
        obs = golden_scenario()
        samples = parse_prometheus_samples(prometheus_text(obs.registry))
        assert samples["sdrad_rewind_latency_seconds_sum"] == (
            3.5e-6 + 4.0e-6 + 1.2e-5
        )
        assert samples["request_latency_exact_sum"] == 1e-5 + 2e-5 + 3e-5 + 4e-5

    def test_inf_parses_as_inf(self):
        samples = parse_prometheus_samples('x_bucket{le="+Inf"} +Inf\n')
        assert math.isinf(samples['x_bucket{le="+Inf"}'])

    def test_write_prometheus(self, tmp_path):
        obs = golden_scenario()
        out = tmp_path / "metrics.prom"
        write_prometheus(obs.registry, str(out))
        assert out.read_text(encoding="utf-8") == prometheus_text(obs.registry)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(ObsRegistry()) == ""
