"""Tests for tracing spans, the span buffer, and the observability hub."""

from __future__ import annotations

import pytest

from repro.obs import ObsError, Observability, Span, SpanBuffer, UNSAMPLED
from repro.sim.clock import VirtualClock


def make_span(span_id=1, trace_id=1, parent_id=None, name="op",
              start=0.0, end=1.0, status="ok", **attrs):
    return Span(
        span_id=span_id, trace_id=trace_id, parent_id=parent_id,
        name=name, start=start, end=end, status=status, attrs=attrs,
    )


class TestSpan:
    def test_duration_and_open(self):
        span = make_span(start=1.0, end=3.5)
        assert span.duration == pytest.approx(2.5)
        assert not span.is_open
        open_span = make_span(end=None, status="open")
        assert open_span.is_open
        assert open_span.duration == 0.0

    def test_set_attrs_merges(self):
        span = make_span(a=1)
        span.set_attrs(b=2, a=3)
        assert span.attrs == {"a": 3, "b": 2}

    def test_dict_round_trip(self):
        span = make_span(span_id=7, trace_id=2, parent_id=3, cause="canary")
        again = Span.from_dict(span.as_dict())
        assert again.as_dict() == span.as_dict()
        assert again is not span

    def test_sampled_flag(self):
        assert make_span().sampled is True
        assert UNSAMPLED.sampled is False
        UNSAMPLED.set_attrs(ignored=True)  # accepted, discarded


class TestSpanBuffer:
    def test_capacity_drops_excess(self):
        buf = SpanBuffer(capacity=2)
        for i in range(4):
            buf.append(make_span(span_id=i + 1))
        assert len(buf) == 2
        assert buf.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObsError):
            SpanBuffer(capacity=0)

    def test_queries(self):
        buf = SpanBuffer()
        root = make_span(span_id=1, name="request")
        child = make_span(span_id=2, parent_id=1, name="domain.execute",
                          start=0.2, end=0.8)
        buf.append(root)
        buf.append(child)
        assert buf.count("request") == 1
        assert [s.span_id for s in buf.of_name("request", "domain.execute")] == [1, 2]
        assert buf.roots() == [root]
        assert buf.children_of(root) == [child]

    def test_clear_resets_dropped(self):
        buf = SpanBuffer(capacity=1)
        buf.append(make_span())
        buf.append(make_span(span_id=2))
        buf.clear()
        assert len(buf) == 0 and buf.dropped == 0


class TestTreeViolations:
    def test_clean_tree(self):
        buf = SpanBuffer()
        buf.append(make_span(span_id=1, start=0.0, end=1.0))
        buf.append(make_span(span_id=2, parent_id=1, start=0.2, end=0.9))
        assert buf.tree_violations() == []

    def test_open_span_flagged(self):
        buf = SpanBuffer()
        buf.append(make_span(end=None))
        assert any("never ended" in p for p in buf.tree_violations())

    def test_end_before_start(self):
        buf = SpanBuffer()
        buf.append(make_span(start=2.0, end=1.0))
        assert any("ends before" in p for p in buf.tree_violations())

    def test_unknown_parent_only_without_drops(self):
        buf = SpanBuffer()
        buf.append(make_span(span_id=5, parent_id=99))
        assert any("unknown parent" in p for p in buf.tree_violations())
        buf.dropped = 1  # parent may be among the dropped spans
        assert buf.tree_violations() == []

    def test_trace_id_mismatch(self):
        buf = SpanBuffer()
        buf.append(make_span(span_id=1, trace_id=1))
        buf.append(make_span(span_id=2, trace_id=2, parent_id=1, start=0.1, end=0.5))
        assert any("trace" in p for p in buf.tree_violations())

    def test_child_outside_parent_interval(self):
        buf = SpanBuffer()
        buf.append(make_span(span_id=1, start=0.0, end=1.0))
        buf.append(make_span(span_id=2, parent_id=1, start=0.5, end=1.5))
        assert any("not contained" in p for p in buf.tree_violations())


class TestHubSpans:
    def test_nesting_links_parent_and_trace(self):
        clock = VirtualClock()
        obs = Observability(clock=clock)
        outer = obs.start_span("request", client="c0")
        clock.advance(1e-3)
        inner = obs.start_span("domain.execute")
        clock.advance(1e-3)
        obs.end_span(inner)
        obs.end_span(outer, status="ok", retries=0)
        spans = obs.buffer.spans
        assert [s.name for s in spans] == ["domain.execute", "request"]
        assert spans[0].parent_id == spans[1].span_id
        assert spans[0].trace_id == spans[1].trace_id
        assert spans[1].attrs == {"client": "c0", "retries": 0}
        assert obs.buffer.tree_violations() == []
        assert obs.open_span_count == 0

    def test_sibling_roots_get_fresh_traces(self):
        obs = Observability()
        a = obs.start_span("a")
        obs.end_span(a)
        b = obs.start_span("b")
        obs.end_span(b)
        assert a.trace_id != b.trace_id

    def test_mis_nested_end_raises_and_preserves_stack(self):
        obs = Observability()
        outer = obs.start_span("outer")
        inner = obs.start_span("inner")
        with pytest.raises(ObsError):
            obs.end_span(outer)
        # The stack survived the error: proper order still works.
        obs.end_span(inner)
        obs.end_span(outer)
        assert obs.open_span_count == 0

    def test_end_with_no_open_span(self):
        obs = Observability()
        with pytest.raises(ObsError):
            obs.end_span(UNSAMPLED)

    def test_context_manager_marks_errors(self):
        obs = Observability()
        with pytest.raises(RuntimeError):
            with obs.span("work"):
                raise RuntimeError("boom")
        assert obs.buffer.spans[0].status == "error"
        assert obs.open_span_count == 0

    def test_event_is_zero_duration_child(self):
        clock = VirtualClock()
        obs = Observability(clock=clock)
        parent = obs.start_span("execute")
        clock.advance(5e-6)
        event = obs.event("domain.rewind", cause="stack-canary", duration=3.5e-6)
        obs.end_span(parent)
        assert event.start == event.end == pytest.approx(5e-6)
        assert event.parent_id == parent.span_id
        assert event.attrs["cause"] == "stack-canary"

    def test_bind_clock_keeps_explicit_clock(self):
        explicit = VirtualClock()
        obs = Observability(clock=explicit)
        obs.bind_clock(VirtualClock())
        assert obs.clock is explicit
        late = Observability()
        adopted = VirtualClock()
        late.bind_clock(adopted)
        assert late.clock is adopted


class TestSampling:
    def test_quarter_sampling_keeps_every_fourth_trace(self):
        obs = Observability(sampling=0.25)
        kept = 0
        for _ in range(16):
            span = obs.start_span("request")
            obs.end_span(span)
            kept += span.sampled
        assert kept == 4
        assert len(obs.buffer) == 4

    def test_zero_sampling_records_no_spans(self):
        obs = Observability(sampling=0.0)
        for _ in range(5):
            span = obs.start_span("request")
            assert span is UNSAMPLED
            assert obs.event("inner") is None
            obs.end_span(span)
        assert len(obs.buffer) == 0
        assert obs.open_span_count == 0

    def test_children_inherit_sampling_decision(self):
        obs = Observability(sampling=0.5)
        first = obs.start_span("request")       # accumulator 0.5: dropped
        child = obs.start_span("domain.execute")
        assert first is UNSAMPLED and child is UNSAMPLED
        obs.end_span(child)
        obs.end_span(first)
        second = obs.start_span("request")      # accumulator 1.0: kept
        assert second.sampled
        obs.end_span(second)

    def test_metrics_exempt_from_sampling(self):
        obs = Observability(sampling=0.0)
        for _ in range(3):
            obs.record_request("memcached", 1e-5)
        assert obs.registry.counter_total("app_requests_total") == 3
        hist = obs.registry.histogram("app_request_latency_seconds", app="memcached")
        assert hist.count == 3

    def test_sampling_out_of_range(self):
        with pytest.raises(ObsError):
            Observability(sampling=1.5)


class TestConveniences:
    def test_record_request_counts_by_status(self):
        obs = Observability()
        obs.record_request("nginx", 2e-5, status="ok")
        obs.record_request("nginx", 3e-5, status="fault")
        assert obs.registry.counter_total("app_requests_total", app="nginx") == 2
        assert obs.registry.counter_total(
            "app_requests_total", app="nginx", status="fault"
        ) == 1

    def test_record_batch(self):
        obs = Observability()
        obs.record_batch("memcached", 16)
        assert obs.registry.counter_total("app_batches_total") == 1
        hist = obs.registry.histogram("app_batch_size", app="memcached")
        assert hist.count == 1 and hist.sum == 16.0
