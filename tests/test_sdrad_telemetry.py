"""Tests for runtime telemetry and cross-subsystem consistency."""

from __future__ import annotations

import json

import pytest

from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import consistency_check, snapshot


def busy_runtime() -> SdradRuntime:
    runtime = SdradRuntime()
    a = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    b = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    runtime.execute(a.udi, lambda h: h.store(h.malloc(32), b"data"))
    runtime.execute(a.udi, lambda h: h.store(0, b"fault"))  # rewind
    runtime.execute(b.udi, lambda h: None)
    runtime.copy_into(b.udi, b"staged")
    return runtime


class TestSnapshot:
    def test_totals(self):
        data = snapshot(busy_runtime())
        assert data["domain_count"] == 2
        assert data["totals"]["faults"] == 1
        assert data["totals"]["rewinds"] == 1
        assert data["totals"]["entries"] == 3
        assert data["totals"]["fault_mix"] == {"page-fault": 1}

    def test_recovery_time_accounted(self):
        runtime = busy_runtime()
        data = snapshot(runtime)
        assert data["totals"]["recovery_time"] == pytest.approx(
            runtime.cost.rewind
        )

    def test_per_domain_rows(self):
        data = snapshot(busy_runtime())
        by_udi = {d["udi"]: d for d in data["domains"]}
        assert by_udi[1]["faults"] == 1
        assert by_udi[2]["faults"] == 0
        assert by_udi[2]["bytes_copied_in"] == 6

    def test_memory_counters_present(self):
        data = snapshot(busy_runtime())
        memory = data["memory"]
        assert memory["checked_stores"] > 0
        assert memory["wrpkru_writes"] > 0
        assert memory["mapped_bytes"] <= memory["space_bytes"]

    def test_json_serialisable(self):
        json.dumps(snapshot(busy_runtime()))

    def test_keyvirt_section_when_enabled(self):
        runtime = SdradRuntime(key_virtualization=True)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: None)
        data = snapshot(runtime)
        assert data["key_virtualization"]["binds"] == 1
        assert data["key_virtualization"]["bound_domains"] == 1

    def test_no_keyvirt_section_by_default(self):
        assert "key_virtualization" not in snapshot(SdradRuntime())


class TestConsistency:
    def test_clean_runtime_has_no_problems(self):
        assert consistency_check(busy_runtime()) == []

    def test_heavy_mixed_usage_stays_consistent(self):
        runtime = SdradRuntime()
        domains = [
            runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
            for _ in range(5)
        ]
        for i, domain in enumerate(domains * 4):
            if i % 3 == 0:
                runtime.execute(domain.udi, lambda h: h.store(0, b"x"))
            else:
                runtime.execute(domain.udi, lambda h: h.malloc(64))
        assert consistency_check(runtime) == []

    def test_after_destroy_books_balance(self):
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: h.store(0, b"x"))
        runtime.domain_destroy(domain.udi)
        # destroyed domain leaves the listing; trace still shows its fault,
        # so the check must not claim trace/stat divergence spuriously
        problems = consistency_check(runtime)
        assert all("destroyed" not in p for p in problems)


class TestObsConsistency:
    """The obs counters are cross-checked against the tracer, so silent
    counter drift fails a tier-1 test instead of shipping wrong metrics."""

    def busy_observed_runtime(self) -> SdradRuntime:
        from repro.obs import Observability

        runtime = SdradRuntime(obs=Observability())
        a = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        b = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(a.udi, lambda h: h.store(h.malloc(32), b"data"))
        runtime.execute(a.udi, lambda h: h.store(0, b"fault"))  # rewind
        runtime.execute(b.udi, lambda h: None)
        runtime.domain_destroy(b.udi)  # ephemeral: stats gone, tracer stays
        return runtime

    def test_observed_runtime_is_consistent(self):
        assert consistency_check(self.busy_observed_runtime()) == []

    def test_counter_drift_fails_loudly(self):
        runtime = self.busy_observed_runtime()
        runtime.obs.registry.counter("sdrad_domain_entries_total").increment()
        problems = consistency_check(runtime)
        assert any("sdrad_domain_entries_total" in p for p in problems)

    def test_snapshot_obs_block_serialises(self):
        data = snapshot(self.busy_observed_runtime())
        json.dumps(data["obs"])
        assert data["obs"]["metrics"][
            "counter/sdrad_domains_destroyed_total"
        ] == 1
