"""Adversarial tests for the software TLB (permission cache).

The TLB must never change observable semantics: a cached *allow* verdict
that survives a PKRU write, a page-permission change, or a protection-key
recycle would silently break the containment guarantees E4 and the property
tests rely on. Every test here first *warms* the cache, then mutates the
relevant state, then asserts the fault still fires — so removing any
invalidation hook makes at least one of them fail.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    PermissionFault,
    ProtectionKeyViolation,
    SegmentationFault,
)
from repro.memory.address_space import AddressSpace
from repro.memory.layout import PAGE_SIZE
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime


@pytest.fixture
def space() -> AddressSpace:
    s = AddressSpace(size=64 * PAGE_SIZE)
    s.page_table.map_range(0, 4 * PAGE_SIZE, pkey=0)
    return s


class TestFastPathBehaviour:
    def test_repeat_access_hits_cache(self, space: AddressSpace):
        space.load(100, 8)
        misses = space.tlb_misses
        hits = space.tlb_hits
        for _ in range(10):
            space.load(100, 8)
        assert space.tlb_misses == misses
        assert space.tlb_hits == hits + 10

    def test_read_verdict_does_not_authorise_writes(self, space: AddressSpace):
        space.page_table.protect_range(
            0, PAGE_SIZE, readable=True, writable=False
        )
        space.load(0, 8)  # warm the *read* verdict
        with pytest.raises(PermissionFault):
            space.store(0, b"x")

    def test_cached_verdict_changes_nothing_observable(self):
        cold = AddressSpace(size=16 * PAGE_SIZE, tlb_enabled=False)
        warm = AddressSpace(size=16 * PAGE_SIZE, tlb_enabled=True)
        for s in (cold, warm):
            s.page_table.map_range(0, 2 * PAGE_SIZE, pkey=0)
            s.store(10, b"hello world")
            for _ in range(3):
                assert s.load(10, 11) == b"hello world"
        assert cold.loads == warm.loads
        assert cold.stores == warm.stores
        assert cold.faults == warm.faults
        assert warm.tlb_hits > 0 and cold.tlb_hits == 0

    def test_faults_are_never_cached(self, space: AddressSpace):
        for _ in range(3):
            with pytest.raises(SegmentationFault):
                space.load(10 * PAGE_SIZE, 4)
        assert space.faults == 3

    def test_disabled_tlb_keeps_counters_zero(self):
        s = AddressSpace(size=8 * PAGE_SIZE, tlb_enabled=False)
        s.page_table.map_range(0, PAGE_SIZE, pkey=0)
        for _ in range(5):
            s.load(0, 4)
        assert s.tlb_hits == 0
        assert s.tlb_misses == 0

    def test_multipage_access_caches_every_page(self, space: AddressSpace):
        space.load(0, 3 * PAGE_SIZE)
        assert space.tlb_misses == 3
        space.load(0, 3 * PAGE_SIZE)
        assert space.tlb_hits == 3


class TestPkruInvalidation:
    def test_revoked_key_faults_after_cached_verdict(self, space: AddressSpace):
        pkey = space.pkeys.alloc()
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, pkey)
        space.pkru.grant(pkey, read=True, write=True)
        space.store(PAGE_SIZE, b"warm")  # cache write verdict
        space.load(PAGE_SIZE, 4)  # cache read verdict
        space.pkru.revoke(pkey)  # the domain-exit WRPKRU
        with pytest.raises(ProtectionKeyViolation):
            space.load(PAGE_SIZE, 4)
        with pytest.raises(ProtectionKeyViolation):
            space.store(PAGE_SIZE, b"stale")

    def test_domain_exit_pkru_restore_drops_domain_verdicts(self):
        # End-to-end: verdicts cached while inside a domain must not let
        # the outside world (root PKRU) reach the domain's pages.
        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

        def touch_own_heap(handle):
            addr = handle.malloc(32)
            handle.store(addr, b"inside")
            return addr

        addr = runtime.execute(domain.udi, touch_own_heap).unwrap()
        # Back outside: PKRU was restored on exit; the cached in-domain
        # verdict must not apply.
        with pytest.raises(ProtectionKeyViolation):
            runtime.space.load(addr, 6)

    def test_regrant_after_revoke_works(self, space: AddressSpace):
        pkey = space.pkeys.alloc()
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, pkey)
        space.pkru.grant(pkey, read=True, write=True)
        space.load(PAGE_SIZE, 4)
        space.pkru.revoke(pkey)
        space.pkru.grant(pkey, read=True, write=True)
        assert space.load(PAGE_SIZE, 4) is not None


class TestPageTableInvalidation:
    def test_mprotect_downgrade_faults_after_cached_verdict(
        self, space: AddressSpace
    ):
        space.store(0, b"warm")  # cache the write verdict
        space.page_table.protect_range(
            0, PAGE_SIZE, readable=True, writable=False
        )
        with pytest.raises(PermissionFault):
            space.store(0, b"stale verdict")

    def test_unmap_faults_after_cached_verdict(self, space: AddressSpace):
        space.load(0, 4)
        space.page_table.unmap_range(0, PAGE_SIZE)
        with pytest.raises(SegmentationFault):
            space.load(0, 4)

    def test_retag_to_denied_key_faults_after_cached_verdict(
        self, space: AddressSpace
    ):
        denied = space.pkeys.alloc()  # never granted in PKRU
        space.load(0, 4)
        space.page_table.tag_range(0, PAGE_SIZE, denied)
        with pytest.raises(ProtectionKeyViolation):
            space.load(0, 4)

    def test_invalidation_is_page_scoped(self, space: AddressSpace):
        space.load(0, 4)
        space.load(PAGE_SIZE, 4)
        space.page_table.protect_range(
            0, PAGE_SIZE, readable=False, writable=False
        )
        hits = space.tlb_hits
        space.load(PAGE_SIZE, 4)  # untouched page stays cached
        assert space.tlb_hits == hits + 1


class TestKeyRecyclingInvalidation:
    def test_pkey_free_flushes_cache(self, space: AddressSpace):
        pkey = space.pkeys.alloc()
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, pkey)
        space.pkru.grant(pkey, read=True, write=True)
        space.load(PAGE_SIZE, 4)
        # Retag away, then recycle the key as the kernel would.
        space.page_table.tag_range(PAGE_SIZE, PAGE_SIZE, 0)
        flushes = space.tlb_flushes
        space.pkeys.free(pkey)
        assert space.tlb_flushes > flushes
        # The flush dropped every cached verdict, not just this page's.
        assert all(not c for c in space._tlb_by_pkru.values())

    def test_keyvirt_eviction_faults_stale_access(self):
        # libmpk-style recycling: domain A's physical key is taken by
        # eviction; re-creating A's PKRU view must fault on A's pages
        # (now behind the lock key), not serve a stale cached verdict.
        runtime = SdradRuntime(key_virtualization=True)
        domains = [
            runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
            for _ in range(runtime.keys.free_physical_keys + 1)
        ]
        victim = domains[0]

        def touch(handle):
            addr = handle.malloc(32)
            handle.store(addr, b"cached-verdict")
            return addr

        addr = runtime.execute(victim.udi, touch).unwrap()
        victim_pkru_view = None
        # Record the PKRU value under which the verdict was cached.
        saved = runtime.space.pkru.snapshot()
        runtime.space.pkru.write(runtime.space.pkru.DENY_ALL_EXCEPT_DEFAULT)
        runtime.space.pkru.revoke(0)
        runtime.space.pkru.grant(victim.pkey, read=True, write=True)
        victim_pkru_view = runtime.space.pkru.value
        runtime.space.pkru.write(saved)

        # Enter every other domain so the victim is evicted to the lock key.
        for other in domains[1:]:
            runtime.execute(other.udi, lambda h: None)
        assert not runtime.keys.is_bound(victim.udi)

        # Replay the victim's old PKRU view: its pages are lock-keyed now,
        # so the access must fault even though a verdict was cached under
        # this exact PKRU value before the eviction retag.
        runtime.space.pkru.write(victim_pkru_view)
        with pytest.raises(ProtectionKeyViolation):
            runtime.space.load(addr, 4)
        runtime.space.pkru.write(saved)

    def test_keyvirt_release_flushes_cache(self):
        runtime = SdradRuntime(key_virtualization=True)
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(domain.udi, lambda h: h.malloc(16))
        flushes = runtime.space.tlb_flushes
        runtime.domain_destroy(domain.udi)
        assert runtime.space.tlb_flushes > flushes


class TestTelemetry:
    def test_snapshot_surfaces_tlb_counters(self):
        from repro.sdrad.telemetry import snapshot

        runtime = SdradRuntime()
        domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
        runtime.execute(
            domain.udi, lambda h: [h.store(h.malloc(32), b"x" * 32) for _ in range(4)]
        )
        data = snapshot(runtime)["memory"]
        assert data["tlb_enabled"] is True
        assert data["tlb_hits"] + data["tlb_misses"] > 0
        assert 0.0 <= data["tlb_hit_rate"] <= 1.0
        assert data["tlb_flushes"] >= 0
