"""Tests for fault-arrival processes and campaigns."""

from __future__ import annotations

import random

import pytest

from repro.faultinj.campaign import (
    DEFAULT_FAULT_MIX,
    BurstArrivals,
    Campaign,
    PeriodicArrivals,
    PoissonArrivals,
)
from repro.faultinj.models import FaultKind
from repro.sim.rng import RngFactory


class TestPoissonArrivals:
    def test_zero_rate_yields_nothing(self):
        arrivals = PoissonArrivals(0.0, random.Random(1))
        assert list(arrivals.times(1000.0)) == []

    def test_times_within_horizon_and_sorted(self):
        arrivals = PoissonArrivals(0.1, random.Random(2))
        times = list(arrivals.times(1000.0))
        assert all(0 <= t < 1000.0 for t in times)
        assert times == sorted(times)

    def test_mean_count_close_to_rate_times_horizon(self):
        arrivals = PoissonArrivals(0.05, random.Random(3))
        counts = [len(list(arrivals.times(10000.0))) for _ in range(30)]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(500, rel=0.15)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0, random.Random(0))


class TestPeriodicArrivals:
    def test_exact_count(self):
        times = list(PeriodicArrivals(3).times(300.0))
        assert len(times) == 3
        assert times == [50.0, 150.0, 250.0]

    def test_zero_count(self):
        assert list(PeriodicArrivals(0).times(100.0)) == []

    def test_offset_fraction(self):
        times = list(PeriodicArrivals(2, offset_fraction=0.0).times(100.0))
        assert times == [0.0, 50.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(-1)
        with pytest.raises(ValueError):
            PeriodicArrivals(1, offset_fraction=1.0)


class TestBurstArrivals:
    def test_bursts_are_clustered(self):
        arrivals = BurstArrivals(
            burst_rate=0.001, burst_size=5, gap=1.0, rng=random.Random(4)
        )
        times = list(arrivals.times(100000.0))
        assert len(times) % 5 == 0 or times  # whole bursts unless truncated
        # within one burst, spacing is exactly the gap
        if len(times) >= 5:
            burst = times[:5]
            gaps = [b - a for a, b in zip(burst, burst[1:])]
            assert all(g == pytest.approx(1.0) for g in gaps)

    def test_all_within_horizon(self):
        arrivals = BurstArrivals(0.01, 3, 0.5, random.Random(5))
        assert all(t < 500.0 for t in arrivals.times(500.0))

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            BurstArrivals(-1, 1, 0, rng)
        with pytest.raises(ValueError):
            BurstArrivals(1, 0, 0, rng)
        with pytest.raises(ValueError):
            BurstArrivals(1, 1, -1, rng)


class TestCampaign:
    def test_plan_is_sorted_and_typed(self):
        campaign = Campaign(
            PeriodicArrivals(10),
            kinds=[FaultKind.STACK_SMASH, FaultKind.HEAP_OVERFLOW],
            rng_factory=RngFactory(1),
        )
        plans = campaign.plan(1000.0)
        assert len(plans) == 10
        assert [p.timestamp for p in plans] == sorted(p.timestamp for p in plans)
        assert all(p.kind in (FaultKind.STACK_SMASH, FaultKind.HEAP_OVERFLOW) for p in plans)

    def test_weighted_mix_respected(self):
        kinds, weights = zip(*DEFAULT_FAULT_MIX)
        campaign = Campaign(
            PeriodicArrivals(5000),
            kinds=list(kinds),
            weights=list(weights),
            rng_factory=RngFactory(2),
        )
        plans = campaign.plan(1e6)
        overflow_share = sum(
            1 for p in plans if p.kind is FaultKind.HEAP_OVERFLOW
        ) / len(plans)
        assert overflow_share == pytest.approx(0.35, abs=0.05)

    def test_deterministic_given_factory_seed(self):
        def build():
            return Campaign(
                PeriodicArrivals(20),
                kinds=list(FaultKind),
                rng_factory=RngFactory(7),
            ).plan(100.0)

        assert build() == build()

    def test_validation(self):
        with pytest.raises(ValueError):
            Campaign(PeriodicArrivals(1), kinds=[])
        with pytest.raises(ValueError):
            Campaign(PeriodicArrivals(1), kinds=[FaultKind.STACK_SMASH], weights=[1, 2])
        campaign = Campaign(PeriodicArrivals(1), kinds=[FaultKind.STACK_SMASH])
        with pytest.raises(ValueError):
            campaign.plan(0.0)
        with pytest.raises(ValueError):
            campaign.plan(float("inf"))

    def test_default_mix_sums_to_one(self):
        assert sum(w for _, w in DEFAULT_FAULT_MIX) == pytest.approx(1.0)
