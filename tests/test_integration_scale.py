"""Integration at scale: key virtualisation × servers × watchdog together.

The extension features must compose: a Memcached server with per-connection
domains for *50 clients* (far past MPK's 15-key limit) under a mixed
benign/malicious trace, with the quarantine watchdog on — everything the
library offers, in one deployment.
"""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.telemetry import consistency_check, snapshot
from repro.sdrad.watchdog import FaultWatchdog, WatchdogConfig
from repro.sim.rng import RngFactory
from repro.workloads.clients import build_population
from repro.workloads.traces import generate_trace
from repro.workloads.zipf import Keyspace, KeyValueWorkload

N_CLIENTS_BENIGN = 47
N_CLIENTS_MALICIOUS = 3
N_REQUESTS = 1500


@pytest.fixture(scope="module")
def deployment():
    factory = RngFactory(77)
    keyspace = Keyspace(300)
    clients = build_population(
        N_CLIENTS_BENIGN,
        N_CLIENTS_MALICIOUS,
        lambda cid, rng: KeyValueWorkload(keyspace, 0.99, rng),
        factory,
        attack_fraction=0.2,
    )
    trace = generate_trace(clients, N_REQUESTS, factory)

    runtime = SdradRuntime(
        space=None,
        key_virtualization=True,
    )
    watchdog = FaultWatchdog(
        runtime.clock,
        WatchdogConfig(threshold=4, window=60.0, quarantine_period=300.0),
    )
    server = MemcachedServer(
        runtime,
        isolation=IsolationMode.PER_CONNECTION,
        domain_heap_size=64 * 1024,
        watchdog=watchdog,
    )
    for client in trace.clients:
        server.connect(client)
    responses = {}
    for entry in trace:
        responses[entry.seq] = server.handle(entry.client_id, entry.payload)
    return runtime, server, trace, responses


class TestScaleDeployment:
    def test_fifty_isolated_connections(self, deployment):
        runtime, server, trace, _ = deployment
        assert len(server.connected_clients) == 50
        assert runtime.keys is not None
        assert runtime.keys.stats.binds >= 50

    def test_every_request_got_a_response(self, deployment):
        _, _, trace, responses = deployment
        assert len(responses) == len(trace)
        assert all(isinstance(r, bytes) and r for r in responses.values())

    def test_no_benign_client_saw_a_server_error(self, deployment):
        _, server, trace, responses = deployment
        malicious = {e.seq for e in trace if e.malicious}
        for seq, response in responses.items():
            if seq not in malicious:
                assert not response.startswith(b"SERVER_ERROR"), seq

    def test_faults_only_from_malicious_clients(self, deployment):
        _, server, _, _ = deployment
        assert all(
            owner.startswith("mallory") for owner in server.metrics.per_client_faults
        )
        assert server.metrics.rewinds > 0

    def test_watchdog_engaged_under_pressure(self, deployment):
        _, server, _, _ = deployment
        # with a 20 % attack fraction over 1500 requests, the threshold of 4
        # in-window faults trips for at least one attacker
        assert server.metrics.quarantines >= 1
        assert server.metrics.quarantine_refusals > 0

    def test_key_pressure_was_real(self, deployment):
        runtime, _, _, _ = deployment
        # 50 domains over 14 physical keys: evictions must have occurred
        assert runtime.keys.stats.evictions > 0
        assert len(runtime.keys.bound_domains) <= 14

    def test_database_contains_only_benign_writes(self, deployment):
        _, server, trace, responses = deployment
        for entry in trace:
            if entry.malicious or not entry.payload.startswith(b"set "):
                continue
            if responses[entry.seq] == b"STORED\r\n":
                key = entry.payload.split(b" ", 2)[1]
                assert server.store.contains(key)

    def test_telemetry_consistent_after_the_storm(self, deployment):
        runtime, _, _, _ = deployment
        assert consistency_check(runtime) == []
        data = snapshot(runtime)
        assert data["totals"]["faults"] == data["totals"]["rewinds"]
        assert data["key_virtualization"]["evictions"] > 0

    def test_total_recovery_time_stays_microscopic(self, deployment):
        runtime, server, _, _ = deployment
        recovery = server.metrics.rewinds * runtime.cost.rewind
        assert recovery < 1e-3  # sub-millisecond for the whole storm
