"""Tests for fleet-scale case-study scenarios."""

from __future__ import annotations

import pytest

from repro.sustainability.scenarios import (
    CDN_CACHE,
    DEFAULT_SCENARIOS,
    SMART_GRID,
    TELECOM_EDGE,
    assess_fleet,
    summarize,
)


class TestScenarioDefinitions:
    def test_three_default_scenarios(self):
        assert len(DEFAULT_SCENARIOS) == 3
        names = {s.name for s in DEFAULT_SCENARIOS}
        assert names == {"telecom-edge", "smart-grid", "cdn-cache"}

    def test_carrier_grade_targets_five_nines(self):
        assert TELECOM_EDGE.availability_target == 0.99999
        assert SMART_GRID.availability_target == 0.99999

    def test_cdn_targets_four_nines(self):
        assert CDN_CACHE.availability_target == 0.9999


class TestFleetAssessment:
    def test_telecom_needs_replication_without_sdrad(self):
        assessment = assess_fleet(TELECOM_EDGE)
        assert assessment.fleet_servers_restart == 2 * TELECOM_EDGE.nodes
        assert assessment.fleet_servers_sdrad == TELECOM_EDGE.nodes
        assert assessment.servers_avoided == TELECOM_EDGE.nodes

    def test_telecom_savings_positive(self):
        assessment = assess_fleet(TELECOM_EDGE)
        assert assessment.fleet_kwh_saving > 1e6  # > 1 GWh across the fleet
        assert assessment.fleet_carbon_saving_kg > 1e5

    def test_cdn_negative_control(self):
        """Four nines at these fault rates doesn't force replication, so
        SDRaD saves no hardware — the honest boundary of the claim."""
        assessment = assess_fleet(CDN_CACHE)
        assert assessment.servers_avoided == 0
        assert assessment.fleet_carbon_saving_kg == 0.0

    def test_rebound_scales_savings(self):
        nominal = assess_fleet(TELECOM_EDGE).fleet_carbon_saving_kg
        rebounded = assess_fleet(
            TELECOM_EDGE, rebound_fraction=0.4
        ).fleet_carbon_saving_kg
        assert rebounded == pytest.approx(0.6 * nominal)

    def test_per_node_rows_included(self):
        assessment = assess_fleet(SMART_GRID)
        strategies = {row.strategy for row in assessment.per_node_rows}
        assert "sdrad-rewind" in strategies
        assert "process-restart" in strategies


class TestSummary:
    def test_summary_rows(self):
        assessments = [assess_fleet(s) for s in DEFAULT_SCENARIOS]
        rows = summarize(assessments)
        assert len(rows) == 3
        assert rows[0][0] == "telecom-edge"
        assert all(len(row) == 7 for row in rows)
