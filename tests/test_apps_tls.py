"""Tests for the TLS record layer and the Heartbleed reproduction."""

from __future__ import annotations

import pytest

from repro.apps.memcached_server import IsolationMode
from repro.apps.openssl_service import TlsServer
from repro.apps.tls import (
    ContentType,
    TlsRecord,
    decode_record,
    make_appdata,
    make_client_hello,
    make_finished,
    make_heartbeat_request,
)
from repro.sdrad.runtime import SdradRuntime


class TestRecordLayer:
    def test_encode_decode_roundtrip(self):
        record = TlsRecord(ContentType.APPLICATION_DATA, 0x0303, b"payload")
        decoded = decode_record(record.encode())
        assert decoded == record

    def test_truncated_record_rejected(self):
        raw = TlsRecord(23, 0x0303, b"payload").encode()
        assert decode_record(raw[:-2]) is None
        assert decode_record(b"\x17") is None

    def test_record_length_is_honest_at_this_layer(self):
        # record length field larger than the wire bytes -> rejected here
        raw = b"\x17\x03\x03\x00\x10short"
        assert decode_record(raw) is None

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(ValueError):
            TlsRecord(23, 0x0303, b"x" * 70000).encode()

    def test_builders_produce_decodable_records(self):
        for raw in (
            make_client_hello(),
            make_finished(),
            make_appdata(b"data"),
            make_heartbeat_request(b"ping"),
        ):
            assert decode_record(raw) is not None


@pytest.fixture
def isolated() -> TlsServer:
    runtime = SdradRuntime()
    return TlsServer(runtime, isolation=IsolationMode.PER_CONNECTION)


@pytest.fixture
def unisolated() -> TlsServer:
    runtime = SdradRuntime()
    return TlsServer(runtime, isolation=IsolationMode.NONE)


def establish(server: TlsServer, client: str) -> None:
    server.connect(client)
    response = server.handle_record(client, make_client_hello())
    assert decode_record(response).content_type == ContentType.HANDSHAKE


class TestHandshake:
    def test_hello_establishes_session(self, isolated: TlsServer):
        establish(isolated, "c")
        assert isolated.session("c").established
        assert len(isolated.session("c").secret) == 48

    def test_handshake_charges_crypto_cost(self, isolated: TlsServer):
        runtime = isolated.runtime
        isolated.connect("c")
        before = runtime.clock.now
        isolated.handle_record("c", make_client_hello())
        assert runtime.clock.now - before >= runtime.cost.tls_handshake

    def test_records_before_handshake_get_alert(self, isolated: TlsServer):
        isolated.connect("c")
        response = isolated.handle_record("c", make_appdata(b"x"))
        assert decode_record(response).content_type == 21  # alert

    def test_appdata_echo_is_masked(self, isolated: TlsServer):
        establish(isolated, "c")
        response = isolated.handle_record("c", make_appdata(b"hello"))
        payload = decode_record(response).payload
        assert payload != b"hello"  # XORed with the session secret
        assert len(payload) == 5

    def test_garbage_record_gets_alert(self, isolated: TlsServer):
        isolated.connect("c")
        response = isolated.handle_record("c", b"\x00\x01")
        assert decode_record(response).content_type == 21

    def test_session_secrets_differ(self, isolated: TlsServer):
        establish(isolated, "a")
        establish(isolated, "b")
        assert isolated.session("a").secret != isolated.session("b").secret


class TestHeartbeat:
    def test_honest_heartbeat_echoes_payload(self, isolated: TlsServer):
        establish(isolated, "c")
        response = isolated.handle_record("c", make_heartbeat_request(b"ping"))
        payload = decode_record(response).payload
        assert payload[0] == 2  # response type
        assert b"ping" in payload

    def test_heartbleed_unisolated_leaks_other_sessions(self, unisolated: TlsServer):
        establish(unisolated, "victim")
        establish(unisolated, "attacker")
        response = unisolated.handle_record(
            "attacker", make_heartbeat_request(b"x", declared=4000)
        )
        assert unisolated.leaked_secrets(response, exclude="attacker") == ["victim"]

    def test_heartbleed_isolated_never_leaks_others(self, isolated: TlsServer):
        establish(isolated, "victim")
        establish(isolated, "attacker")
        for declared in (256, 2000, 16000):
            response = isolated.handle_record(
                "attacker", make_heartbeat_request(b"x", declared=declared)
            )
            assert isolated.leaked_secrets(response, exclude="attacker") == []

    def test_boundary_crossing_overread_rewound(self):
        runtime = SdradRuntime()
        server = TlsServer(
            runtime,
            isolation=IsolationMode.PER_CONNECTION,
            domain_heap_size=16 * 1024,
            domain_stack_size=16 * 1024,
        )
        establish(server, "attacker")
        response = server.handle_record(
            "attacker", make_heartbeat_request(b"x", declared=60000)
        )
        assert decode_record(response).content_type == 21  # alert, not leak
        assert server.metrics.rewinds == 1

    def test_session_survives_rewound_heartbeat(self):
        runtime = SdradRuntime()
        server = TlsServer(
            runtime,
            isolation=IsolationMode.PER_CONNECTION,
            domain_heap_size=16 * 1024,
            domain_stack_size=16 * 1024,
        )
        establish(server, "c")
        server.handle_record("c", make_heartbeat_request(b"x", declared=60000))
        # the session secret was re-staged; appdata still works
        response = server.handle_record("c", make_appdata(b"after"))
        assert decode_record(response).content_type == ContentType.APPLICATION_DATA

    def test_victim_unaffected_by_attack(self, isolated: TlsServer):
        establish(isolated, "victim")
        establish(isolated, "attacker")
        isolated.handle_record("attacker", make_heartbeat_request(b"x", declared=16000))
        response = isolated.handle_record("victim", make_appdata(b"fine"))
        assert decode_record(response).content_type == ContentType.APPLICATION_DATA

    def test_heartbeat_metrics(self, isolated: TlsServer):
        establish(isolated, "c")
        isolated.handle_record("c", make_heartbeat_request(b"a"))
        isolated.handle_record("c", make_heartbeat_request(b"b"))
        assert isolated.metrics.heartbeats == 2

    def test_disconnect_cleans_up(self, isolated: TlsServer):
        establish(isolated, "c")
        baseline = len(isolated.runtime.domains())
        isolated.disconnect("c")
        assert len(isolated.runtime.domains()) == baseline - 1
